// Package verify is the reference "detailed simulation" of a finished
// design: a true Newton-Raphson operating-point solve followed by direct
// complex AC sweeps of every test jig. It produces the "/ Simulation"
// columns of the paper's Tables 2 and 3. Because it shares the
// encapsulated device evaluators with OBLX, any discrepancy between
// prediction and simulation isolates the AWE reduced-order model and the
// residual relaxed-dc error — exactly the comparison the paper makes
// (its own residual differences were attributed to HSPICE-vs-SPICE3
// model mismatches, which this design removes; see DESIGN.md §4).
package verify

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"astrx/internal/acsim"
	"astrx/internal/astrx"
	"astrx/internal/dcsolve"
	"astrx/internal/expr"
	"astrx/internal/mna"
	"astrx/internal/netlist"
)

// SpecResult compares OBLX's prediction with the reference simulation
// for one specification.
type SpecResult struct {
	Name      string  `json:"name"`
	Objective bool    `json:"objective"`
	Good      float64 `json:"good"`
	Bad       float64 `json:"bad"`
	Predicted float64 `json:"predicted"` // OBLX / AWE value at the synthesized point
	Simulated float64 `json:"simulated"` // Newton bias + AC sweep value
	// RelErr is |Predicted - Simulated| / max(|Simulated|, tiny).
	RelErr float64 `json:"rel_err"`
	// Met reports whether the *simulated* value satisfies the spec
	// (objectives count as met when they reach Good).
	Met bool `json:"met"`
}

// Report is a full verification of a synthesized design.
type Report struct {
	Specs []SpecResult
	// BiasIterations is the Newton iteration count of the reference
	// bias solve.
	BiasIterations int
	// BiasConverged reports whether the reference Newton solve reached
	// simulator tolerances; when false the report is computed at the
	// best-effort point and MaxKCL shows the residual honestly.
	BiasConverged bool
	// MaxKCL is the absolute residual after the reference solve (A).
	MaxKCL float64
	// WorstRelErr is the largest prediction error across specs.
	WorstRelErr float64
	// State is the evaluated state at the simulator-grade bias point.
	State *astrx.EvalState
}

// Spec returns the named row or nil.
func (r *Report) Spec(name string) *SpecResult {
	for i := range r.Specs {
		if r.Specs[i].Name == name {
			return &r.Specs[i]
		}
	}
	return nil
}

// Design verifies a synthesized design: x is the full OBLX variable
// vector (user variables + relaxed-dc node voltages); predicted are
// OBLX's spec values at that point.
func Design(c *astrx.Compiled, x []float64, predicted map[string]float64) (*Report, error) {
	// A worst-case (cornered) run hands back the master vector
	// [user vars][nominal nodes][corner nodes...]; verification targets
	// the nominal lane, which is exactly this plan's variable prefix.
	if n := len(c.Vars()); len(x) > n {
		x = x[:n]
	}
	// 1. Reference bias: full Newton from OBLX's node voltages.
	dp := c.DCProblem(x)
	xref := append([]float64(nil), x...)
	iters := 0
	converged := true
	if dp.N() > 0 {
		v0 := append([]float64(nil), x[c.NUser:]...)
		// Verification is short and runs after synthesis, often to salvage
		// a cancelled run's best-so-far — so it deliberately does not
		// inherit the (possibly already-cancelled) synthesis context.
		r, err := dcsolve.Solve(context.Background(), dp, v0,
			dcsolve.Options{MaxIter: 300, GminSteps: 6, BestEffort: true})
		if r == nil {
			return nil, fmt.Errorf("verify: reference bias solve failed: %w", err)
		}
		converged = err == nil
		copy(xref[c.NUser:], r.V)
		iters = r.Iterations
	}
	st := c.Evaluate(xref)
	if st.Err != nil {
		return nil, fmt.Errorf("verify: %w", st.Err)
	}
	maxKCL := 0.0
	for _, r := range st.KCL {
		if a := math.Abs(r); a > maxKCL {
			maxKCL = a
		}
	}

	// 2. AC analyzers per transfer function.
	backend, err := newACBackend(st)
	if err != nil {
		return nil, err
	}
	env := st.EnvWith(backend)

	// 3. Re-measure every spec against the simulator.
	rep := &Report{BiasIterations: iters, BiasConverged: converged, MaxKCL: maxKCL, State: st}
	for _, s := range c.Deck.Specs {
		sim, err := s.Expr.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("verify: spec %s: %w", s.Name, err)
		}
		pred := predicted[s.Name]
		rel := math.Abs(pred-sim) / math.Max(math.Abs(sim), 1e-12)
		met := sim >= s.Good
		if !s.Maximize() {
			met = sim <= s.Good
		}
		rep.Specs = append(rep.Specs, SpecResult{
			Name: s.Name, Objective: s.Objective,
			Good: s.Good, Bad: s.Bad,
			Predicted: pred, Simulated: sim, RelErr: rel, Met: met,
		})
		if rel > rep.WorstRelErr {
			rep.WorstRelErr = rel
		}
	}
	return rep, nil
}

// acBackend measures transfer-function quantities with direct AC solves.
type acBackend struct {
	an  map[string]*acsim.Analyzer // per tf name
	req map[string]*netlist.TFReq
	st  *astrx.EvalState
}

func newACBackend(st *astrx.EvalState) (*acBackend, error) {
	b := &acBackend{
		an:  make(map[string]*acsim.Analyzer),
		req: make(map[string]*netlist.TFReq),
		st:  st,
	}
	for _, j := range st.C.Jigs {
		nl, jc, err := st.JigNetlist(j.Name)
		if err != nil {
			return nil, fmt.Errorf("verify: %w", err)
		}
		sys, err := mna.Build(nl, expr.MapEnv(st.Vals))
		if err != nil {
			return nil, fmt.Errorf("verify: jig %s: %w", j.Name, err)
		}
		an := acsim.NewAnalyzer(sys)
		for _, req := range jc.TFs {
			b.an[req.Name] = an
			b.req[req.Name] = req
		}
	}
	return b, nil
}

// sweepRange picks the interesting frequency window from the AWE model's
// pole/zero set (the simulator needs bounds; the reduced model knows the
// circuit's time constants).
func (b *acBackend) sweepRange(tfName string) (lo, hi float64) {
	lo, hi = 1.0, 1e12
	tf := b.st.TFs[tfName]
	if tf == nil || tf.Order == 0 {
		return lo, hi
	}
	minMag, maxMag := math.Inf(1), 0.0
	for _, p := range tf.Poles {
		m := cmplx.Abs(p)
		if m > 0 && m < minMag {
			minMag = m
		}
		if m > maxMag {
			maxMag = m
		}
	}
	if !math.IsInf(minMag, 1) {
		lo = minMag / 1e3
		hi = maxMag * 1e3
	}
	if lo < 1e-2 {
		lo = 1e-2
	}
	return lo, hi
}

// Measure implements astrx.TFBackend with exact AC analysis. Pole/zero
// queries stay on the AWE backend (an AC sweep has no direct pole view).
func (b *acBackend) Measure(fn, tfName string, extra []expr.Arg) (float64, bool, error) {
	an, ok := b.an[tfName]
	if !ok {
		return 0, false, fmt.Errorf("verify: unknown transfer function %q", tfName)
	}
	req := b.req[tfName]
	lo, hi := b.sweepRange(tfName)
	switch fn {
	case "dc_gain":
		h, err := an.TransferAt(req.Src, req.OutPos, req.OutNeg, lo/100)
		if err != nil {
			return 0, false, err
		}
		return real(h), true, nil
	case "ugf":
		w, err := an.UGF(req.Src, req.OutPos, req.OutNeg, lo, hi)
		if err != nil {
			return 0, false, err
		}
		return w / (2 * math.Pi), true, nil
	case "phase_margin":
		pm, err := an.PhaseMarginDeg(req.Src, req.OutPos, req.OutNeg, lo, hi)
		if err != nil {
			return 0, false, err
		}
		return pm, true, nil
	case "bw3db":
		w, err := b.bw3db(an, req, lo, hi)
		if err != nil {
			return 0, false, err
		}
		return w / (2 * math.Pi), true, nil
	case "gain_at":
		if len(extra) != 1 {
			return 0, false, fmt.Errorf("verify: gain_at needs a frequency")
		}
		h, err := an.TransferAt(req.Src, req.OutPos, req.OutNeg, 2*math.Pi*extra[0].Value)
		if err != nil {
			return 0, false, err
		}
		return cmplx.Abs(h), true, nil
	case "pole", "zero":
		// Defer to the AWE reduced model: poles are model-space objects.
		return 0, false, nil
	}
	return 0, false, nil
}

// bw3db locates the -3 dB point by log scan + bisection of exact solves.
func (b *acBackend) bw3db(an *acsim.Analyzer, req *netlist.TFReq, lo, hi float64) (float64, error) {
	h0, err := an.TransferAt(req.Src, req.OutPos, req.OutNeg, lo/100)
	if err != nil {
		return 0, err
	}
	target := cmplx.Abs(h0) / math.Sqrt2
	if target == 0 {
		return 0, nil
	}
	const steps = 200
	ratio := math.Pow(hi/lo, 1.0/steps)
	prev := lo
	w := lo
	for i := 0; i < steps; i++ {
		w *= ratio
		h, err := an.TransferAt(req.Src, req.OutPos, req.OutNeg, w)
		if err != nil {
			return 0, err
		}
		if cmplx.Abs(h) <= target {
			a, c := prev, w
			for it := 0; it < 50; it++ {
				mid := math.Sqrt(a * c)
				h, err := an.TransferAt(req.Src, req.OutPos, req.OutNeg, mid)
				if err != nil {
					return 0, err
				}
				if cmplx.Abs(h) > target {
					a = mid
				} else {
					c = mid
				}
			}
			return math.Sqrt(a * c), nil
		}
		prev = w
	}
	return 0, nil
}

// SortedSpecNames returns spec names of a report in declaration order of
// the deck (already the case) — helper for deterministic printing.
func (r *Report) SortedSpecNames() []string {
	names := make([]string, len(r.Specs))
	for i, s := range r.Specs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
