package verify

import (
	"context"
	"math"
	"testing"

	"astrx/internal/astrx"
	"astrx/internal/netlist"
	"astrx/internal/oblx"
)

const dividerDeck = `
.jig main
vin in 0 0 ac 1
r1 in out 1k
r2 out 0 R2
cl out 0 1p
.pz tf v(out) vin
.ends

.bias
vb in 0 1
r1 in out 1k
r2 out 0 R2
.ends

.var R2 min=100 max=100k grid
.obj gain 'dc_gain(tf)' good=0.99 bad=0.1
.spec bw 'bw3db(tf)' good=1Meg bad=10k
`

const diffAmpDeck = `
.lib c2u

.module amp (in+ in- out+ out- vdd vss oa)
m1 out- in+ a a nmos3 w=W l=L
m2 out+ in- a a nmos3 w=W l=L
m3 out- nb  vdd vdd pmos3 w=Wp l=2u
m4 out+ nb  vdd vdd pmos3 w=Wp l=2u
vb  nb vdd '0-Vb'
ib  a vss I
.ends

.var W  min=2u  max=500u grid
.var Wp min=2u  max=500u grid
.var L  min=2u  max=20u  grid
.var I  min=2u  max=500u cont
.var Vb min=0.5 max=2.2  cont

.const Cl 1p

.jig main
xamp in+ in- out+ out- nvdd nvss oa amp
vdd  nvdd 0 2.5
vss  nvss 0 -2.5
vin  in+ 0 0 ac 1
ein  in- 0 in+ 0 -1
cl1  out+ 0 Cl
cl2  out- 0 Cl
.pz tf v(out+,out-) vin
.ends

.bias
xamp in+ in- out+ out- nvdd nvss oa amp
vdd  nvdd 0 2.5
vss  nvss 0 -2.5
vi1  in+ 0 0
vi2  in- 0 0
.ends

.obj  adm 'db(dc_gain(tf))'  good=40 bad=5
.spec ugf 'ugf(tf)'          good=1Meg bad=10k
.spec pm  'phase_margin(tf)' good=60 bad=20
.region xamp.m1 sat margin=0.05
.region xamp.m2 sat margin=0.05
.region xamp.m3 sat margin=0.05
.region xamp.m4 sat margin=0.05
`

func TestVerifyDivider(t *testing.T) {
	d, err := netlist.Parse(dividerDeck)
	if err != nil {
		t.Fatal(err)
	}
	c, err := astrx.Compile(d, astrx.CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// R2 = 9k → gain 0.9 exactly; BW = 1/(2π·(1k∥9k)·1p).
	x := []float64{9000, 0.9}
	st := c.Evaluate(x)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	rep, err := Design(c, x, st.SpecVals)
	if err != nil {
		t.Fatal(err)
	}
	g := rep.Spec("gain")
	if g == nil {
		t.Fatal("gain row missing")
	}
	if math.Abs(g.Simulated-0.9) > 1e-9 {
		t.Errorf("simulated gain = %g, want 0.9", g.Simulated)
	}
	// AWE-predicted and AC-simulated must agree almost exactly (this is
	// the paper's central accuracy claim).
	if g.RelErr > 1e-6 {
		t.Errorf("gain prediction error = %g", g.RelErr)
	}
	bw := rep.Spec("bw")
	wantBW := 1 / (2 * math.Pi * 900 * 1e-12) // (1k∥9k)·1p
	if math.Abs(bw.Simulated-wantBW)/wantBW > 0.01 {
		t.Errorf("simulated BW = %g, want %g", bw.Simulated, wantBW)
	}
	if bw.RelErr > 0.01 {
		t.Errorf("BW prediction error = %g", bw.RelErr)
	}
	if !g.Met { // 0.9 < 0.99 → objective not at Good
		t.Log("gain objective not met at 0.9 — expected")
	}
	if rep.MaxKCL > 1e-12 {
		t.Errorf("reference bias residual = %g", rep.MaxKCL)
	}
}

func TestVerifySynthesizedDiffAmp(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis in -short mode")
	}
	d, err := netlist.Parse(diffAmpDeck)
	if err != nil {
		t.Fatal(err)
	}
	res, err := oblx.Run(context.Background(), d, oblx.Options{Seed: 5, MaxMoves: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Design(res.Compiled, res.X, res.State.SpecVals)
	if err != nil {
		t.Fatal(err)
	}
	// The reference Newton solve reaches simulator-grade residuals.
	if rep.MaxKCL > 1e-10 {
		t.Errorf("reference bias residual = %g A", rep.MaxKCL)
	}
	// Small-signal predictions match simulation almost exactly — the
	// Table 2 "OBLX / Simulation" agreement. The paper reports near-zero
	// discrepancy for AWE-measured specs; allow 2%.
	for _, row := range rep.Specs {
		if row.Name == "pm" && row.Simulated == 0 {
			continue // no crossing found is a legitimate degenerate case
		}
		if row.RelErr > 0.02 {
			t.Errorf("spec %s: predicted %g vs simulated %g (rel %g)",
				row.Name, row.Predicted, row.Simulated, row.RelErr)
		}
	}
	// The synthesized design meets its constraint specs in simulation.
	for _, row := range rep.Specs {
		if !row.Objective && !row.Met {
			t.Errorf("constraint %s not met in simulation: %g (good %g)",
				row.Name, row.Simulated, row.Good)
		}
	}
}

func TestACBackendPoleFallsBackToAWE(t *testing.T) {
	// pole(tf, 1) has no AC-sweep implementation; the backend must defer
	// to the AWE reduced model rather than failing.
	d, err := netlist.Parse(`
.jig main
vin in 0 0 ac 1
r1 in out 1k
r2 out 0 R2
cl out 0 1p
.pz tf v(out) vin
.ends
.bias
vb in 0 1
r1 in out 1k
r2 out 0 R2
.ends
.var R2 min=100 max=100k grid
.obj gain 'dc_gain(tf)' good=0.99 bad=0.1
.spec p1 'pole(tf, 1)' good=100k bad=100Meg
`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := astrx.Compile(d, astrx.CostOptions{})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{9000, 0.9}
	st := c.Evaluate(x)
	rep, err := Design(c, x, st.SpecVals)
	if err != nil {
		t.Fatal(err)
	}
	p1 := rep.Spec("p1")
	if p1 == nil || p1.Simulated <= 0 {
		t.Fatalf("pole fallback broken: %+v", p1)
	}
	// Must equal the AWE pole (1/(2π·900Ω·1pF)).
	want := 1 / (2 * math.Pi * 900 * 1e-12)
	if math.Abs(p1.Simulated-want)/want > 0.01 {
		t.Errorf("pole = %g, want %g", p1.Simulated, want)
	}
}

func TestReportAccessors(t *testing.T) {
	r := &Report{Specs: []SpecResult{{Name: "b"}, {Name: "a"}}}
	if r.Spec("a") == nil || r.Spec("zz") != nil {
		t.Error("Spec accessor broken")
	}
	names := r.SortedSpecNames()
	if len(names) != 2 || names[0] != "a" {
		t.Errorf("sorted names = %v", names)
	}
}
