package circuit

import (
	"testing"

	"astrx/internal/expr"
)

func TestKindOf(t *testing.T) {
	cases := map[string]Kind{
		"r1": KindR, "Cload": KindC, "l2": KindL, "vdd": KindV,
		"ibias": KindI, "e1": KindE, "gm1": KindG, "f1": KindF,
		"h1": KindH, "m1": KindM, "q3": KindQ, "xamp": KindX,
	}
	for name, want := range cases {
		got, ok := KindOf(name)
		if !ok || got != want {
			t.Errorf("KindOf(%q) = %v,%v want %v", name, got, ok, want)
		}
	}
	if _, ok := KindOf("zz"); ok {
		t.Error("KindOf(zz) should fail")
	}
	if _, ok := KindOf(""); ok {
		t.Error("KindOf(\"\") should fail")
	}
}

func TestKindNodeCount(t *testing.T) {
	if KindR.NodeCount() != 2 || KindE.NodeCount() != 4 || KindM.NodeCount() != 4 ||
		KindQ.NodeCount() != 3 || KindX.NodeCount() != -1 {
		t.Error("NodeCount wrong for some kind")
	}
}

func TestKindString(t *testing.T) {
	if KindM.String() != "M" || Kind(99).String() == "" {
		t.Error("Kind.String misbehaves")
	}
}

func TestElementEval(t *testing.T) {
	env := expr.MapEnv{"W": 10e-6}
	e := &Element{Name: "m1", Kind: KindM,
		Params: map[string]expr.Node{"w": expr.MustParse("W*2")}}
	v, err := e.EvalParam("W", 0, env)
	if err != nil {
		t.Fatal(err)
	}
	if v != 20e-6 {
		t.Errorf("EvalParam = %g, want 20e-6", v)
	}
	// Absent param returns default.
	v, err = e.EvalParam("l", 5e-6, env)
	if err != nil || v != 5e-6 {
		t.Errorf("default param = %g,%v want 5e-6,nil", v, err)
	}
	// No value is an error.
	if _, err := e.EvalValue(env); err == nil {
		t.Error("EvalValue on valueless element should fail")
	}
	r := &Element{Name: "r1", Kind: KindR, Value: expr.MustParse("2k")}
	v, err = r.EvalValue(env)
	if err != nil || v != 2000 {
		t.Errorf("EvalValue = %g,%v want 2000,nil", v, err)
	}
	// Error propagation from bad expressions.
	bad := &Element{Name: "r2", Kind: KindR, Value: expr.MustParse("nope")}
	if _, err := bad.EvalValue(env); err == nil {
		t.Error("EvalValue with unknown var should fail")
	}
}

func TestModelP(t *testing.T) {
	m := &Model{Name: "n1", Type: "nmos", Level: 3, Params: map[string]float64{"vto": 0.7}}
	if m.P("VTO", 0) != 0.7 {
		t.Error("P should be case-insensitive via lowering")
	}
	if m.P("kp", 5) != 5 {
		t.Error("P default not honored")
	}
}

func TestBuildIndexAndLookup(t *testing.T) {
	n := &Netlist{Elements: []*Element{
		{Name: "r1", Kind: KindR, Nodes: []string{"a", "b"}},
		{Name: "r2", Kind: KindR, Nodes: []string{"b", "0"}},
		{Name: "c1", Kind: KindC, Nodes: []string{"a", "gnd"}},
	}}
	n.BuildIndex()
	if n.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", n.NumNodes())
	}
	ia, ok := n.NodeIndex("a")
	if !ok || ia != 0 {
		t.Errorf("NodeIndex(a) = %d,%v", ia, ok)
	}
	ig, ok := n.NodeIndex("0")
	if !ok || ig != -1 {
		t.Errorf("NodeIndex(0) = %d,%v want -1,true", ig, ok)
	}
	ig2, ok := n.NodeIndex("gnd")
	if !ok || ig2 != -1 {
		t.Errorf("NodeIndex(gnd) = %d,%v want -1,true", ig2, ok)
	}
	if _, ok := n.NodeIndex("zzz"); ok {
		t.Error("NodeIndex(zzz) should fail")
	}
	if n.NodeName(-1) != Ground || n.NodeName(0) != "a" {
		t.Error("NodeName mapping wrong")
	}
	if n.Element("r2") == nil || n.Element("nope") != nil {
		t.Error("Element lookup wrong")
	}
	s := n.Stats()
	if s.Nodes != 2 || s.Elements != 3 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestFlattenSimple(t *testing.T) {
	sub := &Subckt{
		Name:  "amp",
		Ports: []string{"in", "out"},
		Elements: []*Element{
			{Name: "r1", Kind: KindR, Nodes: []string{"in", "mid"}, Value: expr.MustParse("1k")},
			{Name: "r2", Kind: KindR, Nodes: []string{"mid", "out"}, Value: expr.MustParse("1k")},
			{Name: "c1", Kind: KindC, Nodes: []string{"mid", "0"}, Value: expr.MustParse("1p")},
		},
	}
	top := []*Element{
		{Name: "vin", Kind: KindV, Nodes: []string{"n1", "0"}, Value: expr.MustParse("0"), ACMag: 1},
		{Name: "x1", Kind: KindX, Nodes: []string{"n1", "n2"}, Sub: "amp"},
		{Name: "rl", Kind: KindR, Nodes: []string{"n2", "0"}, Value: expr.MustParse("10k")},
	}
	nl, err := Flatten("t", top, map[string]*Subckt{"amp": sub}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Elements) != 5 {
		t.Fatalf("flattened to %d elements, want 5", len(nl.Elements))
	}
	if nl.Element("x1.r1") == nil {
		t.Error("missing qualified element x1.r1")
	}
	// Internal node becomes x1.mid; ports map to n1/n2.
	r1 := nl.Element("x1.r1")
	if r1.Nodes[0] != "n1" || r1.Nodes[1] != "x1.mid" {
		t.Errorf("x1.r1 nodes = %v", r1.Nodes)
	}
	c1 := nl.Element("x1.c1")
	if c1.Nodes[1] != Ground {
		t.Errorf("ground must stay global, got %v", c1.Nodes)
	}
	if nl.NumNodes() != 3 { // n1, n2, x1.mid
		t.Errorf("NumNodes = %d, want 3", nl.NumNodes())
	}
}

func TestFlattenNested(t *testing.T) {
	inner := &Subckt{Name: "cell", Ports: []string{"p"},
		Elements: []*Element{{Name: "r1", Kind: KindR, Nodes: []string{"p", "q"}, Value: expr.MustParse("1")}}}
	outer := &Subckt{Name: "blk", Ports: []string{"t"},
		Elements: []*Element{{Name: "x2", Kind: KindX, Nodes: []string{"t"}, Sub: "cell"}}}
	top := []*Element{{Name: "x1", Kind: KindX, Nodes: []string{"a"}, Sub: "blk"}}
	nl, err := Flatten("t", top, map[string]*Subckt{"cell": inner, "blk": outer}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := nl.Element("x1.x2.r1")
	if e == nil {
		t.Fatal("missing doubly nested element")
	}
	if e.Nodes[0] != "a" || e.Nodes[1] != "x1.x2.q" {
		t.Errorf("nested nodes = %v", e.Nodes)
	}
}

func TestFlattenErrors(t *testing.T) {
	top := []*Element{{Name: "x1", Kind: KindX, Nodes: []string{"a"}, Sub: "nope"}}
	if _, err := Flatten("t", top, nil, nil); err == nil {
		t.Error("unknown subckt should fail")
	}
	sub := &Subckt{Name: "s", Ports: []string{"p", "q"}}
	top = []*Element{{Name: "x1", Kind: KindX, Nodes: []string{"a"}, Sub: "s"}}
	if _, err := Flatten("t", top, map[string]*Subckt{"s": sub}, nil); err == nil {
		t.Error("port count mismatch should fail")
	}
}

func TestSortedModelNames(t *testing.T) {
	m := map[string]*Model{"zz": {}, "aa": {}, "mm": {}}
	got := SortedModelNames(m)
	if len(got) != 3 || got[0] != "aa" || got[2] != "zz" {
		t.Errorf("SortedModelNames = %v", got)
	}
}
