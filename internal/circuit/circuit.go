// Package circuit defines the netlist object model shared by the whole
// system: elements, device model cards, hierarchical subcircuits, and
// flat netlists with node indexing. The vocabulary follows SPICE — the
// ASTRX input language (package netlist) is "designed after the familiar
// SPICE notation", as the paper puts it.
package circuit

import (
	"fmt"
	"sort"
	"strings"

	"astrx/internal/expr"
)

// Kind identifies an element type by its SPICE prefix letter.
type Kind int

// Element kinds.
const (
	KindR Kind = iota // resistor
	KindC             // capacitor
	KindL             // inductor
	KindV             // independent voltage source
	KindI             // independent current source
	KindE             // voltage-controlled voltage source
	KindG             // voltage-controlled current source
	KindF             // current-controlled current source
	KindH             // current-controlled voltage source
	KindM             // MOSFET
	KindQ             // BJT
	KindX             // subcircuit instance
)

var kindNames = map[Kind]string{
	KindR: "R", KindC: "C", KindL: "L", KindV: "V", KindI: "I",
	KindE: "E", KindG: "G", KindF: "F", KindH: "H", KindM: "M",
	KindQ: "Q", KindX: "X",
}

// String returns the SPICE prefix letter for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindOf maps an element name's first letter to its Kind.
func KindOf(name string) (Kind, bool) {
	if name == "" {
		return 0, false
	}
	switch strings.ToLower(name)[0] {
	case 'r':
		return KindR, true
	case 'c':
		return KindC, true
	case 'l':
		return KindL, true
	case 'v':
		return KindV, true
	case 'i':
		return KindI, true
	case 'e':
		return KindE, true
	case 'g':
		return KindG, true
	case 'f':
		return KindF, true
	case 'h':
		return KindH, true
	case 'm':
		return KindM, true
	case 'q':
		return KindQ, true
	case 'x':
		return KindX, true
	}
	return 0, false
}

// NodeCount returns how many connection nodes an element of kind k has in
// its netlist line (X instances vary and return -1).
func (k Kind) NodeCount() int {
	switch k {
	case KindR, KindC, KindL, KindV, KindI, KindF, KindH:
		return 2
	case KindE, KindG:
		return 4 // out+, out-, ctrl+, ctrl-
	case KindM:
		return 4 // d, g, s, b
	case KindQ:
		return 3 // c, b, e
	}
	return -1
}

// Element is one netlist element. Values are expression trees so that
// device geometries and passive values may reference the synthesis
// variables (e.g. W, L, I in the paper's §IV example).
type Element struct {
	Name  string   // instance name, lower case, e.g. "m1"
	Kind  Kind     //
	Nodes []string // connection nodes in SPICE order

	// Value is the primary value: resistance, capacitance, inductance,
	// DC value for V/I, gain for E/G/F/H. Nil for M/Q/X.
	Value expr.Node

	// ACMag is the AC stimulus magnitude for V/I sources (0 = none).
	ACMag float64

	// CtrlName names the controlling V source for F/H elements.
	CtrlName string

	// Model names the .model card for M/Q devices.
	Model string

	// Params holds named device parameters (w, l, m for MOS; area for
	// BJT) as expressions.
	Params map[string]expr.Node

	// Sub names the subcircuit definition for X instances.
	Sub string
}

// Param returns the named parameter expression or nil.
func (e *Element) Param(name string) expr.Node {
	if e.Params == nil {
		return nil
	}
	return e.Params[strings.ToLower(name)]
}

// EvalValue evaluates the element's primary value against env.
func (e *Element) EvalValue(env expr.Env) (float64, error) {
	if e.Value == nil {
		return 0, fmt.Errorf("circuit: element %s has no value", e.Name)
	}
	v, err := e.Value.Eval(env)
	if err != nil {
		return 0, fmt.Errorf("circuit: element %s value: %w", e.Name, err)
	}
	return v, nil
}

// EvalParam evaluates a named parameter, returning def when absent.
func (e *Element) EvalParam(name string, def float64, env expr.Env) (float64, error) {
	p := e.Param(name)
	if p == nil {
		return def, nil
	}
	v, err := p.Eval(env)
	if err != nil {
		return 0, fmt.Errorf("circuit: element %s param %s: %w", e.Name, name, err)
	}
	return v, nil
}

// Model is a device model card (.model name type level=… params…).
type Model struct {
	Name   string
	Type   string // nmos, pmos, npn, pnp
	Level  int    // 1, 3, or 4 (BSIM-style); BJTs use Gummel-Poon
	Params map[string]float64
}

// P returns a model parameter with a default.
func (m *Model) P(name string, def float64) float64 {
	if v, ok := m.Params[strings.ToLower(name)]; ok {
		return v
	}
	return def
}

// Subckt is a hierarchical circuit definition (.module card in ASTRX
// decks — the circuit under design is itself a Subckt).
type Subckt struct {
	Name     string
	Ports    []string
	Elements []*Element
}

// Netlist is a flat circuit: every X instance expanded, all names
// path-qualified ("xamp.m1"), nodes global strings with "0" as ground.
type Netlist struct {
	Title    string
	Elements []*Element
	Models   map[string]*Model

	nodeIndex map[string]int
	nodeNames []string
}

// Ground is the name of the reference node.
const Ground = "0"

// IsGround reports whether a node name refers to the reference node.
func IsGround(n string) bool { return n == Ground || strings.EqualFold(n, "gnd") }

// BuildIndex assigns a dense index to every non-ground node. It must be
// called after the element list is final and before NodeIndex/NodeName.
func (n *Netlist) BuildIndex() {
	n.nodeIndex = make(map[string]int)
	n.nodeNames = n.nodeNames[:0]
	add := func(node string) {
		if IsGround(node) {
			return
		}
		if _, ok := n.nodeIndex[node]; !ok {
			n.nodeIndex[node] = len(n.nodeNames)
			n.nodeNames = append(n.nodeNames, node)
		}
	}
	for _, e := range n.Elements {
		for _, nd := range e.Nodes {
			add(nd)
		}
	}
}

// NumNodes returns the number of non-ground nodes (after BuildIndex).
func (n *Netlist) NumNodes() int { return len(n.nodeNames) }

// NodeIndex returns the dense index of a node, or -1 for ground; the
// second result is false for unknown nodes.
func (n *Netlist) NodeIndex(name string) (int, bool) {
	if IsGround(name) {
		return -1, true
	}
	i, ok := n.nodeIndex[name]
	return i, ok
}

// NodeName returns the name for a dense node index.
func (n *Netlist) NodeName(i int) string {
	if i < 0 {
		return Ground
	}
	return n.nodeNames[i]
}

// NodeNames returns all non-ground node names in index order.
func (n *Netlist) NodeNames() []string { return n.nodeNames }

// Element returns the element with the given (path-qualified) name.
func (n *Netlist) Element(name string) *Element {
	for _, e := range n.Elements {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// Stats summarizes a netlist for Table-1-style reporting.
type Stats struct {
	Nodes    int // non-ground nodes
	Elements int
}

// Stats computes node/element counts (BuildIndex is invoked if needed).
func (n *Netlist) Stats() Stats {
	if n.nodeIndex == nil {
		n.BuildIndex()
	}
	return Stats{Nodes: n.NumNodes(), Elements: len(n.Elements)}
}

// Flatten expands the element list of a top-level circuit, resolving X
// instances against subckts. Instance-local nodes become "<path>.<node>";
// ports are replaced by the caller's nodes; element names gain the
// instance path prefix. Parameter expressions are shared (not cloned):
// they reference global design variables by name.
func Flatten(title string, elems []*Element, subckts map[string]*Subckt, models map[string]*Model) (*Netlist, error) {
	out := &Netlist{Title: title, Models: models}
	if err := flattenInto(out, "", elems, nil, subckts); err != nil {
		return nil, err
	}
	out.BuildIndex()
	return out, nil
}

func flattenInto(out *Netlist, path string, elems []*Element, portMap map[string]string, subckts map[string]*Subckt) error {
	mapNode := func(local string) string {
		if IsGround(local) {
			return Ground
		}
		if portMap != nil {
			if g, ok := portMap[local]; ok {
				return g
			}
		}
		if path == "" {
			return local
		}
		return path + "." + local
	}
	qual := func(name string) string {
		if path == "" {
			return name
		}
		return path + "." + name
	}
	for _, e := range elems {
		if e.Kind == KindX {
			sub, ok := subckts[e.Sub]
			if !ok {
				return fmt.Errorf("circuit: instance %s references unknown subcircuit %q", qual(e.Name), e.Sub)
			}
			if len(e.Nodes) != len(sub.Ports) {
				return fmt.Errorf("circuit: instance %s has %d nodes, subcircuit %s has %d ports",
					qual(e.Name), len(e.Nodes), sub.Name, len(sub.Ports))
			}
			pm := make(map[string]string, len(sub.Ports))
			for i, p := range sub.Ports {
				pm[p] = mapNode(e.Nodes[i])
			}
			if err := flattenInto(out, qual(e.Name), sub.Elements, pm, subckts); err != nil {
				return err
			}
			continue
		}
		fe := &Element{
			Name:     qual(e.Name),
			Kind:     e.Kind,
			Nodes:    make([]string, len(e.Nodes)),
			Value:    e.Value,
			ACMag:    e.ACMag,
			CtrlName: e.CtrlName,
			Model:    e.Model,
			Params:   e.Params,
			Sub:      e.Sub,
		}
		if e.CtrlName != "" {
			fe.CtrlName = qual(e.CtrlName)
			if portMap == nil && path == "" {
				fe.CtrlName = e.CtrlName
			}
		}
		for i, nd := range e.Nodes {
			fe.Nodes[i] = mapNode(nd)
		}
		out.Elements = append(out.Elements, fe)
	}
	return nil
}

// SortedModelNames returns model names in deterministic order, for
// reporting.
func SortedModelNames(models map[string]*Model) []string {
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
