package server

import (
	"bufio"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"astrx/internal/netlist"
	"astrx/internal/oblx"
	"astrx/internal/retry"
	"astrx/internal/telemetry"
)

// getJSON fetches a URL and decodes the JSON body into v, returning the
// status code.
func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestFlightSnapshotSurvivesRestart is the acceptance drill: a job that
// stalls on every attempt is killed, requeued, and finally poisoned —
// each kill dumping the flight recorder to the state dir — and after a
// daemon restart the last moves are still retrievable over the API from
// the durable snapshot.
func TestFlightSnapshotSurvivesRestart(t *testing.T) {
	orig := synthesize
	defer func() { synthesize = orig }()
	synthesize = func(ctx context.Context, deck *netlist.Deck, opt oblx.Options) (*oblx.Result, error) {
		if opt.Progress != nil {
			opt.Progress(oblx.ProgressEvent{
				Move: 17, MaxMoves: opt.MaxMoves, MoveClass: "random",
				Accepted: true, DCost: -0.5, Temp: 3.25, LamTarget: 0.44,
				AcceptRatio: 0.5, Cost: 12.5, BestCost: 12.5, Evals: 100,
			})
		}
		<-ctx.Done() // stall until the watchdog kills us
		return nil, ctx.Err()
	}

	dir := t.TempDir()
	m1, err := New(Options{
		StateDir:     dir,
		Workers:      1,
		StallTimeout: 60 * time.Millisecond,
		Retry:        retry.Policy{Base: 10 * time.Millisecond, Max: 20 * time.Millisecond, Multiplier: 2, MaxAttempts: 2},
		Logger:       testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(m1.Handler())

	j, err := m1.SubmitWithRequestID(testDeck, JobOptions{Seed: 1, MaxMoves: 1000}, "req-flight-1")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StatePoisoned, 30*time.Second)

	// While the poisoning incarnation is still up, telemetry is live.
	var live TelemetrySummary
	if code := getJSON(t, ts1.URL+"/v1/jobs/"+j.ID+"/telemetry", &live); code != http.StatusOK {
		t.Fatalf("live telemetry: status %d", code)
	}
	if live.Source != "live" || live.Records < 1 || live.TotalRecorded < 1 {
		t.Fatalf("live telemetry: %+v", live)
	}

	// The poison kill left a durable flight snapshot in the state dir.
	if _, err := os.Stat(filepath.Join(dir, "job-"+j.ID+".flight")); err != nil {
		t.Fatalf("no flight snapshot on disk: %v", err)
	}

	ts1.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}

	// ---- restart over the same state dir ----
	m2 := newTestManager(t, Options{StateDir: dir, Workers: 1})
	ts2 := httptest.NewServer(m2.Handler())
	defer ts2.Close()

	j2 := m2.Get(j.ID)
	if j2 == nil || j2.State() != StatePoisoned {
		t.Fatalf("poisoned job not recovered: %v", j2)
	}

	var sum TelemetrySummary
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+j.ID+"/telemetry", &sum); code != http.StatusOK {
		t.Fatalf("snapshot telemetry: status %d", code)
	}
	if sum.Source != "snapshot" || !strings.Contains(sum.Cause, "stalled") ||
		sum.Records < 1 || sum.LastMove == nil {
		t.Fatalf("snapshot telemetry: %+v", sum)
	}
	if sum.LastMove.Move != 17 || sum.LastMove.MoveClass != "random" || !sum.LastMove.Accepted {
		t.Fatalf("last move corrupted across restart: %+v", sum.LastMove)
	}

	// The JSONL dump round-trips every buffered record.
	resp, err := http.Get(ts2.URL + "/v1/jobs/" + j.ID + "/telemetry/moves")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("moves: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("moves Content-Type = %q", ct)
	}
	var got int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var rec telemetry.MoveRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("moves line %d: %v", got+1, err)
		}
		if rec.Move != 17 {
			t.Errorf("moves line %d: move %d, want 17", got+1, rec.Move)
		}
		got++
	}
	if got != sum.Records {
		t.Errorf("moves returned %d records, summary says %d", got, sum.Records)
	}

	// The request ID survived the restart inside the job record.
	if rec := readRecord(t, dir, j.ID); rec.RequestID != "req-flight-1" {
		t.Errorf("persisted request ID = %q, want req-flight-1", rec.RequestID)
	}
}

// TestTelemetryLegacyJob409: a job recovered from a record that predates
// telemetry — no live recorder, no flight snapshot on disk — answers 409
// Conflict, not 500, on both telemetry endpoints.
func TestTelemetryLegacyJob409(t *testing.T) {
	orig := synthesize
	defer func() { synthesize = orig }()
	synthesize = func(ctx context.Context, deck *netlist.Deck, opt oblx.Options) (*oblx.Result, error) {
		return nil, context.Canceled // fail instantly; no stall, no snapshot
	}

	dir := t.TempDir()
	m1, err := New(Options{StateDir: dir, Workers: 1, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m1.Submit(testDeck, JobOptions{Seed: 1, MaxMoves: 1000})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed, 30*time.Second)
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Options{StateDir: dir, Workers: 1})
	ts := httptest.NewServer(m2.Handler())
	defer ts.Close()

	for _, path := range []string{"/telemetry", "/telemetry/moves"} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + path)
		if err != nil {
			t.Fatal(err)
		}
		var e apiError
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("GET %s: status %d, want 409", path, resp.StatusCode)
		}
		if !strings.Contains(e.Error, "no telemetry") {
			t.Errorf("GET %s: error %q", path, e.Error)
		}
	}

	// Unknown jobs still 404.
	resp, err := http.Get(ts.URL + "/v1/jobs/nosuchjob/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job telemetry: status %d, want 404", resp.StatusCode)
	}
}

// TestSubscribeConcurrentPublish races the SSE replay buffer: publishers
// appending progress and state events while subscribers attach, drain,
// and detach. Run under -race; the invariants checked are that replay
// snapshots never exceed the buffer cap and stay in event order.
func TestSubscribeConcurrentPublish(t *testing.T) {
	j := &Job{ID: "race", state: StateQueued, bestCost: math.NaN()}

	var pubs, subs sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		pubs.Add(1)
		go func(p int) {
			defer pubs.Done()
			for i := 0; i < 2000; i++ {
				ev := Event{Type: "progress", Prog: &oblx.ProgressEvent{Move: i, Run: p}}
				j.mu.Lock()
				j.publishLocked(ev)
				j.mu.Unlock()
			}
		}(p)
	}
	for s := 0; s < 8; s++ {
		subs.Add(1)
		go func() {
			defer subs.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				replay, ch, cancel := j.Subscribe()
				if len(replay) > maxBufferedEvents {
					t.Errorf("replay has %d events, cap is %d", len(replay), maxBufferedEvents)
				}
				// Drain a few live events, then detach mid-stream.
				for i := 0; i < 10; i++ {
					select {
					case <-ch:
					case <-time.After(time.Millisecond):
					}
				}
				cancel()
			}
		}()
	}
	pubs.Wait()
	// Terminal state event lands after the progress storm.
	j.mu.Lock()
	j.publishLocked(Event{Type: "state", State: StateDone})
	j.mu.Unlock()
	close(stop)
	subs.Wait()

	replay, _, cancel := j.Subscribe()
	cancel()
	if len(replay) == 0 || len(replay) > maxBufferedEvents {
		t.Fatalf("final replay has %d events", len(replay))
	}
	if last := replay[len(replay)-1]; last.Type != "state" || last.State != StateDone {
		t.Errorf("state transitions must never be evicted; last event %+v", last)
	}
}

// TestTraceparentRequestID: with no X-Request-Id, the request ID falls
// back to the W3C traceparent trace ID, so daemon log lines correlate
// with an upstream tracing system.
func TestTraceparentRequestID(t *testing.T) {
	cases := []struct {
		tp, want string
	}{
		{"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", "0af7651916cd43dd8448eb211c80319c"},
		{"00-00000000000000000000000000000000-b7ad6b7169203331-01", ""}, // all-zero trace ID is invalid
		{"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", ""}, // uppercase is not valid traceparent
		{"garbage", ""},
		{"", ""},
		// Cases the pre-trace-package extractor wrongly accepted:
		{"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", ""},       // version ff is forbidden
		{"zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", ""},       // non-hex version
		{"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", ""}, // version 00 has exactly 4 fields
		{"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", ""},       // all-zero parent span ID
		{"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz", ""},       // non-hex flags
		// A future version may append fields; the embedded IDs still parse.
		{"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", "0af7651916cd43dd8448eb211c80319c"},
	}
	for _, c := range cases {
		if got := traceparentID(c.tp); got != c.want {
			t.Errorf("traceparentID(%q) = %q, want %q", c.tp, got, c.want)
		}
	}

	m := newTestManager(t, Options{})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("traceparent", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("X-Request-Id = %q, want the traceparent trace ID", got)
	}

	// An explicit X-Request-Id wins over traceparent.
	req2, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req2.Header.Set("traceparent", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	req2.Header.Set("X-Request-Id", "explicit-7")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got != "explicit-7" {
		t.Errorf("X-Request-Id = %q, want explicit-7", got)
	}
}
