package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"astrx/internal/trace"
)

// tenantCtxKey carries the authenticated tenant name through a
// request's context.
type tenantCtxKey struct{}

// tenantFrom returns the tenant name the auth middleware resolved for
// this request.
func tenantFrom(r *http.Request) string {
	t, _ := r.Context().Value(tenantCtxKey{}).(string)
	return t
}

// apiKeyFrom extracts the client's API key: "Authorization: Bearer
// <key>" preferred, "X-Api-Key: <key>" accepted.
func apiKeyFrom(r *http.Request) string {
	if ah := r.Header.Get("Authorization"); strings.HasPrefix(ah, "Bearer ") {
		return strings.TrimSpace(strings.TrimPrefix(ah, "Bearer "))
	}
	return r.Header.Get("X-Api-Key")
}

// withAuth authenticates every /v1 request and stamps the tenant into
// the request context. In open mode (no key file) everything resolves
// to the default tenant — existing unauthenticated clients keep
// working unchanged. With a key file, a missing or unknown key is 401.
func (m *Manager) withAuth(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t, err := m.auth.Authenticate(apiKeyFrom(r))
		if err != nil {
			w.Header().Set("WWW-Authenticate", `Bearer realm="oblxd"`)
			writeErr(w, http.StatusUnauthorized, "%v", err)
			return
		}
		r = r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, t.Name))
		h.ServeHTTP(w, r)
	})
}

// maxDeckBytes bounds a submitted deck; real ASTRX decks are a few KB.
const maxDeckBytes = 1 << 20

// submitRequest is the JSON body of POST /v1/jobs. Clients may instead
// POST the raw deck as text/plain and pass options as query parameters.
type submitRequest struct {
	Deck    string     `json:"deck"`
	Options JobOptions `json:"options"`
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr emits a JSON error body. Every error response carries a
// Retry-After hint: handlers with a real backoff estimate set the
// header before calling (writeErr keeps it), the load-shedding codes
// default to 5s, everything else to a nominal 1s (the X-Request-Id
// header is added for all responses by the Handler middleware).
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	if w.Header().Get("Retry-After") == "" {
		switch code {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			w.Header().Set("Retry-After", "5")
		default:
			w.Header().Set("Retry-After", "1")
		}
	}
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// withRequestID tags every request and response with an X-Request-Id —
// the client's when present, else the trace ID of a W3C traceparent
// header, else a minted one — so an API error can be correlated with
// the daemon's job log lines (and with an upstream tracing system).
func withRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = traceparentID(r.Header.Get("Traceparent"))
		}
		if id == "" {
			id = newID()
		}
		r.Header.Set("X-Request-Id", id)
		w.Header().Set("X-Request-Id", id)
		h.ServeHTTP(w, r)
	})
}

// traceparentID extracts the 32-hex-digit trace ID from a W3C
// traceparent header, returning "" for anything malformed. Validation
// is trace.Parse — the earlier hand-rolled check here accepted headers
// with the forbidden version "ff", a non-hex version or parent ID, an
// all-zero parent ID, and non-hex flags, which then leaked into request
// IDs and job logs as if they were real upstream traces.
func traceparentID(tp string) string {
	tc, err := trace.Parse(tp)
	if err != nil {
		return ""
	}
	return tc.TraceID
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a deck (JSON {deck, options} or text/plain + query params)
//	GET    /v1/jobs             list jobs, newest first
//	GET    /v1/jobs/{id}        job status (state, best cost, latest spec values)
//	GET    /v1/jobs/{id}/events SSE stream of state transitions + annealing progress
//	GET    /v1/jobs/{id}/result final design + verification numbers (409 until terminal)
//	GET    /v1/jobs/{id}/telemetry       stage-timing breakdown + flight-recorder summary
//	GET    /v1/jobs/{id}/telemetry/moves flight-recorder ring as JSONL, oldest first
//	GET    /v1/jobs/{id}/trace  distributed-trace span tree (live, or the durable snapshot)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	POST   /v1/batches          submit N decks as one batch of child jobs
//	GET    /v1/batches/{id}     batch roll-up (per-state counts + child statuses)
//	GET    /v1/batches/{id}/events aggregate SSE stream across all children
//	GET    /debug/metrics       Prometheus text exposition
//	GET    /debug/pprof/        runtime profiles (only with Options.EnableProfiling)
//	GET    /healthz             JSON health detail; 200 ok/degraded, 503 draining
//
// Every response carries an X-Request-Id header (the client's, or a
// minted one); error responses also carry a Retry-After hint.
func (m *Manager) Handler() http.Handler {
	// The /v1 API runs behind tenant authentication; operational
	// endpoints (/healthz, /debug/*) stay open for probes and scrapers.
	api := http.NewServeMux()
	api.HandleFunc("POST /v1/jobs", m.handleSubmit)
	api.HandleFunc("GET /v1/jobs", m.handleList)
	api.HandleFunc("GET /v1/jobs/{id}", m.handleStatus)
	api.HandleFunc("GET /v1/jobs/{id}/events", m.handleEvents)
	api.HandleFunc("GET /v1/jobs/{id}/result", m.handleResult)
	api.HandleFunc("GET /v1/jobs/{id}/telemetry", m.handleTelemetry)
	api.HandleFunc("GET /v1/jobs/{id}/telemetry/moves", m.handleTelemetryMoves)
	api.HandleFunc("GET /v1/jobs/{id}/trace", m.handleTrace)
	api.HandleFunc("DELETE /v1/jobs/{id}", m.handleCancel)
	api.HandleFunc("POST /v1/batches", m.handleBatchSubmit)
	api.HandleFunc("GET /v1/batches/{id}", m.handleBatchStatus)
	api.HandleFunc("GET /v1/batches/{id}/events", m.handleBatchEvents)

	mux := http.NewServeMux()
	mux.Handle("/v1/", m.withAuth(api))
	mux.Handle("GET /debug/metrics", m.reg.Handler())
	if m.opt.EnableProfiling {
		// The pprof handlers register themselves on http.DefaultServeMux
		// at import; mount them on this mux explicitly instead so the
		// endpoints exist only when profiling was asked for.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := m.Health()
		code := http.StatusOK
		if h.Status == "draining" {
			code = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "5")
		}
		writeJSON(w, code, h)
	})
	return withRequestID(mux)
}

func (m *Manager) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxDeckBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxDeckBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, "deck larger than %d bytes", maxDeckBytes)
		return
	}

	var req submitRequest
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, "parse request: %v", err)
			return
		}
	} else {
		// Raw deck in the body; options from query parameters, so
		// `curl --data-binary @deck.ckt '...?max_moves=20000'` works.
		req.Deck = string(body)
		q := r.URL.Query()
		intQ := func(key string, dst *int) bool {
			if s := q.Get(key); s != "" {
				n, err := strconv.Atoi(s)
				if err != nil {
					writeErr(w, http.StatusBadRequest, "query %s: %v", key, err)
					return false
				}
				*dst = n
			}
			return true
		}
		if !intQ("max_moves", &req.Options.MaxMoves) ||
			!intQ("runs", &req.Options.Runs) ||
			!intQ("progress_every", &req.Options.ProgressEvery) {
			return
		}
		if s := q.Get("seed"); s != "" {
			n, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				writeErr(w, http.StatusBadRequest, "query seed: %v", err)
				return
			}
			req.Options.Seed = n
		}
		if s := q.Get("no_freeze"); s != "" {
			req.Options.NoFreeze = s == "1" || s == "true"
		}
		// Same convention as the oblx -corners flag: absent/"all" →
		// nil (every declared corner — cornered decks are robust by
		// default), "none" → empty non-nil (nominal-only), otherwise a
		// comma-separated name list validated at submit.
		if s := q.Get("corners"); s != "" {
			switch strings.ToLower(strings.TrimSpace(s)) {
			case "all":
				req.Options.Corners = nil
			case "none":
				req.Options.Corners = []string{}
			default:
				for _, n := range strings.Split(s, ",") {
					if n = strings.TrimSpace(n); n != "" {
						req.Options.Corners = append(req.Options.Corners, n)
					}
				}
			}
		}
	}
	if strings.TrimSpace(req.Deck) == "" {
		writeErr(w, http.StatusBadRequest, "empty deck")
		return
	}

	j, err := m.SubmitTraced(req.Deck, req.Options, r.Header.Get("X-Request-Id"), tenantFrom(r),
		r.Header.Get("Traceparent"))
	if err != nil {
		m.writeSubmitErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	code := http.StatusAccepted
	if j.State().terminal() { // instant cache hit
		code = http.StatusOK
	}
	writeJSON(w, code, j.Status())
}

// writeSubmitErr maps a Submit error onto its HTTP status: 503 while
// draining, 429 (+ Retry-After from the backlog estimator) for a full
// queue or an exhausted tenant quota, 400 for bad decks.
func (m *Manager) writeSubmitErr(w http.ResponseWriter, err error) {
	var de *DeckError
	var qe *QuotaError
	switch {
	case errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrQueueFull), errors.As(err, &qe):
		// Hint when the queue is actually expected to drain, not a
		// fixed constant.
		secs := int(math.Ceil(m.retryAfterEstimate().Seconds()))
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeErr(w, http.StatusTooManyRequests, "%v", err)
	case errors.As(err, &de):
		writeErr(w, http.StatusBadRequest, "%v", de.Err)
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := m.Jobs()
	tenant := tenantFrom(r)
	out := make([]*Status, 0, len(jobs))
	for _, j := range jobs {
		if m.visibleTo(j, tenant) {
			out = append(out, j.Status())
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// visibleTo scopes job visibility: with authentication on, a tenant
// sees only its own jobs; open mode sees everything (including jobs
// recovered from records written under authenticated incarnations).
func (m *Manager) visibleTo(j *Job, tenant string) bool {
	return m.auth.OpenMode() || j.Tenant == tenant
}

// jobOr404 resolves the {id} path value, scoped to the requesting
// tenant — another tenant's job is indistinguishable from a missing
// one.
func (m *Manager) jobOr404(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	j := m.Get(id)
	if j != nil && !m.visibleTo(j, tenantFrom(r)) {
		j = nil
	}
	if j == nil {
		writeErr(w, http.StatusNotFound, "no job %q", id)
	}
	return j
}

func (m *Manager) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := m.jobOr404(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (m *Manager) handleResult(w http.ResponseWriter, r *http.Request) {
	j := m.jobOr404(w, r)
	if j == nil {
		return
	}
	res := j.Result()
	if res == nil {
		writeErr(w, http.StatusConflict, "job %s is %s; result available once terminal", j.ID, j.State())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := m.jobOr404(w, r)
	if j == nil {
		return
	}
	if err := m.Cancel(j.ID); err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams the job's event history and live updates as
// Server-Sent Events. Each event is one JSON object; the SSE event name
// is the Event.Type ("state" or "progress"). The stream closes when the
// job reaches a terminal state or the client disconnects.
func (m *Manager) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := m.jobOr404(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	replay, ch, cancel := j.Subscribe()
	defer cancel()

	send := func(ev Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
		fl.Flush()
		return !(ev.Type == "state" && ev.State.terminal())
	}
	for _, ev := range replay {
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if !send(ev) {
				return
			}
		}
	}
}
