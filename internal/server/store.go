package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"astrx/internal/oblx"
)

// jobRecord is the on-disk form of a job (job-<id>.json in the state
// directory). Terminal jobs keep their full result so a restarted daemon
// can still serve GET /result; queued jobs keep enough to re-run; a job
// that was running when the daemon died is recorded as running and
// requeued with its checkpoint (job-<id>.ckpt) on recovery.
type jobRecord struct {
	Version int        `json:"version"`
	ID      string     `json:"id"`
	Deck    string     `json:"deck"`
	Options JobOptions `json:"options"`
	Created time.Time  `json:"created"`
	State   State      `json:"state"`
	Error   string     `json:"error,omitempty"`
	Result  *JobResult `json:"result,omitempty"`
}

const jobRecordVersion = 1

func (m *Manager) jobPath(id string) string {
	return filepath.Join(m.opt.StateDir, "job-"+id+".json")
}

func (m *Manager) checkpointPath(id string) string {
	return filepath.Join(m.opt.StateDir, "job-"+id+".ckpt")
}

// persist writes the job's current state to the state directory
// atomically (tmp + rename). A manager without a state directory
// persists nothing.
func (m *Manager) persist(j *Job) error {
	if m.opt.StateDir == "" {
		return nil
	}
	j.mu.Lock()
	rec := jobRecord{
		Version: jobRecordVersion,
		ID:      j.ID,
		Deck:    j.Deck,
		Options: j.Options,
		Created: j.Created,
		State:   j.state,
		Error:   j.err,
		Result:  j.result,
	}
	j.mu.Unlock()

	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return fmt.Errorf("server: marshal job %s: %w", j.ID, err)
	}
	path := m.jobPath(j.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("server: write job record: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: commit job record: %w", err)
	}
	return nil
}

// removeCheckpoint deletes a job's checkpoint once it reaches a terminal
// state — the snapshot only exists to survive a crash mid-run.
func (m *Manager) removeCheckpoint(j *Job, st State) {
	if m.opt.StateDir == "" || !st.terminal() {
		return
	}
	if err := os.Remove(m.checkpointPath(j.ID)); err != nil && !os.IsNotExist(err) {
		m.opt.Logf("oblxd: remove checkpoint %s: %v", j.ID, err)
	}
}

// recover loads persisted jobs from the state directory: terminal jobs
// become servable history; queued jobs re-enter the queue; jobs recorded
// as running died with the previous daemon and are requeued — with their
// checkpoint attached when one exists, so single-run jobs resume from
// the exact move the last snapshot captured.
func (m *Manager) recover() error {
	if err := os.MkdirAll(m.opt.StateDir, 0o755); err != nil {
		return fmt.Errorf("server: state dir: %w", err)
	}
	entries, err := os.ReadDir(m.opt.StateDir)
	if err != nil {
		return fmt.Errorf("server: read state dir: %w", err)
	}
	var requeue []*Job
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(m.opt.StateDir, name))
		if err != nil {
			m.opt.Logf("oblxd: recover %s: %v", name, err)
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			m.opt.Logf("oblxd: recover %s: corrupt record: %v", name, err)
			continue
		}
		if rec.Version != jobRecordVersion || rec.ID == "" {
			m.opt.Logf("oblxd: recover %s: unsupported record version %d", name, rec.Version)
			continue
		}
		j := &Job{
			ID:       rec.ID,
			Deck:     rec.Deck,
			Options:  rec.Options,
			Created:  rec.Created,
			state:    rec.State,
			err:      rec.Error,
			result:   rec.Result,
			bestCost: math.NaN(),
		}
		switch rec.State {
		case StateDone, StateFailed, StateCancelled:
			j.events = append(j.events, Event{Type: "state", State: rec.State, Error: rec.Error})
		case StateQueued, StateRunning:
			j.state = StateQueued
			j.events = append(j.events, Event{Type: "state", State: StateQueued})
			if ck, err := oblx.LoadCheckpoint(m.checkpointPath(rec.ID)); err == nil {
				if rec.Options.Runs <= 1 {
					j.resume = ck
					m.opt.Logf("oblxd: job %s will resume from move %d", rec.ID, ck.Anneal.Move)
				}
			} else if !errors.Is(err, fs.ErrNotExist) {
				m.opt.Logf("oblxd: job %s: checkpoint unreadable, restarting run: %v", rec.ID, err)
			}
			requeue = append(requeue, j)
		default:
			m.opt.Logf("oblxd: recover %s: unknown state %q", name, rec.State)
			continue
		}
		m.jobs[j.ID] = j
	}
	// Requeue in original submission order.
	sort.Slice(requeue, func(a, b int) bool {
		return requeue[a].Created.Before(requeue[b].Created)
	})
	m.queue = append(m.queue, requeue...)
	if n := len(requeue); n > 0 {
		m.opt.Logf("oblxd: recovered %d pending job(s) from %s", n, m.opt.StateDir)
	}
	return nil
}
