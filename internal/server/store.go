package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"astrx/internal/durable"
	"astrx/internal/oblx"
	"astrx/internal/tenancy"
	"astrx/internal/trace"
)

// jobRecord is the on-disk form of a job (job-<id>.json in the state
// directory). Terminal jobs keep their full result so a restarted daemon
// can still serve GET /result; queued jobs keep enough to re-run; a job
// that was running when the daemon died is recorded as running and
// requeued with its checkpoint (job-<id>.ckpt) on recovery.
//
// Records are sealed in a checksummed durable envelope and written
// atomically; the startup fsck in recover verifies every file before
// trusting it.
type jobRecord struct {
	Version int        `json:"version"`
	ID      string     `json:"id"`
	Deck    string     `json:"deck"`
	Options JobOptions `json:"options"`
	Created time.Time  `json:"created"`
	State   State      `json:"state"`
	Error   string     `json:"error,omitempty"`
	Result  *JobResult `json:"result,omitempty"`
	// Attempts and History carry the supervision state across restarts,
	// so a job that stalled twice under the previous daemon has only its
	// remaining attempts left under this one.
	Attempts int          `json:"attempts,omitempty"`
	History  []JobFailure `json:"history,omitempty"`
	// RequestID keeps the submit-time correlation ID across restarts, so
	// the whole lifecycle stays greppable by one ID. Optional, so
	// version-2 records from before the field are still valid.
	RequestID string `json:"request_id,omitempty"`
	// Tenant names the submitting principal; empty (pre-v3 records)
	// recovers as the default tenant.
	Tenant string `json:"tenant,omitempty"`
	// DeckHash is the deck's canonical content hash.
	DeckHash string `json:"deck_hash,omitempty"`
	// CacheHit marks a job that completed instantly from the result
	// cache, so the distinction survives a restart.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Traceparent is the job's distributed-trace propagation context
	// (trace ID + deterministic root span ID), so a restarted daemon
	// keeps extending the same trace. Optional, like RequestID, so
	// records from before the field are still valid.
	Traceparent string `json:"traceparent,omitempty"`
	// TraceRemoteParent is the client span ID the trace root is
	// remotely parented to, so the link survives a restart.
	TraceRemoteParent string `json:"trace_remote_parent,omitempty"`
}

// jobRecordVersion 3 added the tenancy and result-cache fields; 2 added
// the envelope seal and the supervision fields. Version-1 records (raw
// JSON) and version-2 records are still readable.
const jobRecordVersion = 3

// quarantineDir is where the startup fsck moves files it refuses to
// trust, relative to the state directory.
const quarantineDir = "quarantine"

func (m *Manager) jobPath(id string) string {
	return filepath.Join(m.opt.StateDir, "job-"+id+".json")
}

func (m *Manager) checkpointPath(id string) string {
	return filepath.Join(m.opt.StateDir, "job-"+id+".ckpt")
}

// persist writes the job's current state to the state directory as a
// sealed envelope, atomically (tmp + fsync + rename + dir fsync). A
// manager without a state directory persists nothing. Success and
// failure feed the degraded-mode flag: an unwritable state directory
// turns the daemon read-only in-memory instead of crashing it, and the
// next successful write turns it back.
func (m *Manager) persist(j *Job) error {
	if m.opt.StateDir == "" {
		return nil
	}
	j.mu.Lock()
	rec := jobRecord{
		Version:   jobRecordVersion,
		ID:        j.ID,
		Deck:      j.Deck,
		Options:   j.Options,
		Created:   j.Created,
		State:     j.state,
		Error:     j.err,
		Result:    j.result,
		Attempts:  j.attempts,
		History:   j.history,
		RequestID: j.requestID,
		Tenant:    j.Tenant,
		DeckHash:  j.DeckHash,
		CacheHit:  j.cacheHit,
	}
	j.mu.Unlock()
	rec.Traceparent = j.TraceContext()
	rec.TraceRemoteParent = j.traceRemote

	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return fmt.Errorf("server: marshal job %s: %w", j.ID, err)
	}
	if err := durable.WriteSealedAtomic(m.fsys, m.jobPath(j.ID), data); err != nil {
		m.noteStateDirError(err)
		return fmt.Errorf("server: persist job %s: %w", j.ID, err)
	}
	m.noteStateDirOK()
	return nil
}

// noteStateDirError flips the manager into degraded (in-memory) mode.
func (m *Manager) noteStateDirError(err error) {
	m.mPersistErr.Inc()
	m.mu.Lock()
	was := m.degraded
	m.degraded = true
	m.mu.Unlock()
	if !was {
		m.log.Error("state dir unwritable, degrading to in-memory mode", "err", err)
	}
}

// noteStateDirOK clears degraded mode after a successful write.
func (m *Manager) noteStateDirOK() {
	m.mu.Lock()
	was := m.degraded
	m.degraded = false
	m.mu.Unlock()
	if was {
		m.log.Info("state dir writable again, leaving degraded mode")
	}
}

// Degraded reports whether the manager is running in-memory because the
// state directory stopped accepting writes.
func (m *Manager) Degraded() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded
}

// removeCheckpoint deletes a job's checkpoint once it reaches a terminal
// state — the snapshot only exists to survive a crash mid-run.
func (m *Manager) removeCheckpoint(j *Job, st State) {
	if m.opt.StateDir == "" || !st.terminal() {
		return
	}
	if err := m.fsys.Remove(m.checkpointPath(j.ID)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		m.jlog(j).Warn("remove checkpoint failed", "err", err)
	}
}

// quarantine moves a state-directory file the fsck refuses to trust into
// quarantine/ (with a .reason sidecar) instead of deleting it, so an
// operator can inspect what was lost and why. See docs/operations.md.
func (m *Manager) quarantine(name, reason string) {
	qdir := filepath.Join(m.opt.StateDir, quarantineDir)
	if err := m.fsys.MkdirAll(qdir, 0o755); err != nil {
		m.log.Error("fsck: cannot create quarantine dir, leaving file in place",
			"dir", qdir, "file", name, "err", err)
		return
	}
	src := filepath.Join(m.opt.StateDir, name)
	dst := filepath.Join(qdir, name)
	if err := m.fsys.Rename(src, dst); err != nil {
		m.log.Error("fsck: cannot quarantine file", "file", name, "err", err)
		return
	}
	if err := m.fsys.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644); err != nil {
		m.log.Error("fsck: cannot record quarantine reason", "file", name, "err", err)
	}
	m.mQuarantine.Inc()
	m.log.Warn("fsck: quarantined file", "file", name, "reason", reason)
}

// recover is the startup fsck plus job recovery. Every job-*.json is
// verified (envelope checksum, parseable JSON, supported version, ID
// matching the filename, no duplicates) before it is trusted; anything
// that fails moves to quarantine/ with a recorded reason rather than
// aborting startup or silently resuming from garbage. Orphan checkpoints
// (no record) are quarantined too, and stale temp files from interrupted
// atomic writes are deleted.
//
// Surviving records recover as before: terminal jobs become servable
// history; queued jobs re-enter the queue; jobs recorded as running died
// with the previous daemon and are requeued — with their checkpoint
// attached when one exists and verifies, so single-run jobs resume from
// the exact move the last snapshot captured. A corrupt checkpoint is
// quarantined and its job restarts from scratch: a lost prefix of moves,
// never a lost job.
func (m *Manager) recover() error {
	if err := m.fsys.MkdirAll(m.opt.StateDir, 0o755); err != nil {
		return fmt.Errorf("server: state dir: %w", err)
	}
	entries, err := m.fsys.ReadDir(m.opt.StateDir)
	if err != nil {
		return fmt.Errorf("server: read state dir: %w", err)
	}

	var requeue []*Job
	var ckpts []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir():
			continue
		case strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-"):
			// Leftover from an atomic write the previous daemon never
			// committed; the rename never happened, so nothing references it.
			m.fsys.Remove(filepath.Join(m.opt.StateDir, name))
			m.log.Info("fsck: removed stale temp file", "file", name)
			continue
		case strings.HasPrefix(name, "job-") && strings.HasSuffix(name, ".ckpt"):
			ckpts = append(ckpts, name)
			continue
		case !strings.HasPrefix(name, "job-") || !strings.HasSuffix(name, ".json"):
			continue
		}

		rec, why := m.loadRecord(name)
		if rec == nil {
			m.quarantine(name, why)
			continue
		}
		if _, dup := m.jobs[rec.ID]; dup {
			m.quarantine(name, fmt.Sprintf("duplicate job ID %s", rec.ID))
			continue
		}
		tenant := rec.Tenant
		if tenant == "" {
			tenant = tenancy.DefaultTenantName
		}
		j := &Job{
			ID:        rec.ID,
			Deck:      rec.Deck,
			Options:   rec.Options,
			Created:   rec.Created,
			Tenant:    tenant,
			DeckHash:  rec.DeckHash,
			state:     rec.State,
			err:       rec.Error,
			result:    rec.Result,
			attempts:  rec.Attempts,
			history:   rec.History,
			requestID: rec.RequestID,
			cacheHit:  rec.CacheHit,
			bestCost:  math.NaN(),
		}
		// Recompute the cache key (and a missing hash) so a recovered
		// job's eventual result still lands in the cache.
		if dh, ck, err := cacheKeyFor(rec.Deck, rec.Options); err == nil {
			j.cacheKey = ck
			if j.DeckHash == "" {
				j.DeckHash = dh
			}
		}
		switch rec.State {
		case StateDone, StateFailed, StateCancelled, StatePoisoned:
			// No live recorder: GET /trace serves the durable snapshot the
			// terminal transition sealed (409 for pre-tracing records).
			j.events = append(j.events, Event{Type: "state", State: rec.State, Error: rec.Error})
		case StateQueued, StateRunning:
			// Re-attach the persisted trace context (or derive one for
			// pre-tracing records) and replay the previous incarnation's
			// completed spans, so the resumed job stays one trace tree.
			if tc, terr := trace.Parse(rec.Traceparent); terr == nil {
				m.attachJobTrace(j, tc, rec.TraceRemoteParent)
			} else {
				m.initJobTrace(j, "")
			}
			m.seedTraceFromSnapshot(j)
			j.state = StateQueued
			j.events = append(j.events, Event{Type: "state", State: StateQueued})
			ckName := "job-" + rec.ID + ".ckpt"
			if ck, err := oblx.LoadCheckpointFS(m.fsys, m.checkpointPath(rec.ID)); err == nil {
				if rec.Options.Runs <= 1 {
					j.resume = ck
					// restart tests grep for "will resume from move" —
					// keep the phrase in the message.
					m.jlog(j).Info("job will resume from move", "move", ck.Anneal.Move)
				}
			} else if !errors.Is(err, fs.ErrNotExist) {
				m.quarantine(ckName, fmt.Sprintf("unreadable checkpoint for job %s: %v", rec.ID, err))
				m.jlog(j).Warn("checkpoint quarantined, restarting run from scratch")
			}
			requeue = append(requeue, j)
		default:
			m.quarantine(name, fmt.Sprintf("unknown state %q", rec.State))
			continue
		}
		m.jobs[j.ID] = j
	}

	// Checkpoints must belong to a live record; anything else is either
	// garbage from a lost record (quarantine: the operator may want the
	// moves) or a leftover of a terminal job (delete: its result is safe).
	for _, name := range ckpts {
		id := strings.TrimSuffix(strings.TrimPrefix(name, "job-"), ".ckpt")
		j := m.jobs[id]
		switch {
		case j == nil:
			m.quarantine(name, "orphan checkpoint: no job record for "+id)
		case j.State().terminal():
			m.fsys.Remove(filepath.Join(m.opt.StateDir, name))
			m.log.Info("fsck: removed checkpoint of terminal job", "job", id)
		}
	}

	// Requeue in original submission order; pushing in global Created
	// order rebuilds every tenant's lane in its own Created order, so
	// per-lane FIFO survives the restart.
	sort.Slice(requeue, func(a, b int) bool {
		return requeue[a].Created.Before(requeue[b].Created)
	})
	for _, j := range requeue {
		m.ensureTenantMetrics(j.Tenant)
		m.markQueued(j)
		m.sched.Push(j.Tenant, j)
		m.tenantQueued[j.Tenant]++
	}
	if n := len(requeue); n > 0 {
		m.log.Info("recovered pending jobs", "count", n, "dir", m.opt.StateDir)
	}
	return nil
}

// loadRecord reads and verifies one job-<id>.json. On failure it returns
// a nil record and the quarantine reason.
func (m *Manager) loadRecord(name string) (*jobRecord, string) {
	data, err := m.fsys.ReadFile(filepath.Join(m.opt.StateDir, name))
	if err != nil {
		return nil, fmt.Sprintf("unreadable: %v", err)
	}
	if len(data) == 0 {
		return nil, "zero-byte record"
	}
	payload := data
	if durable.IsSealed(data) {
		payload, err = durable.Open(data)
		if err != nil {
			return nil, fmt.Sprintf("envelope verification failed: %v", err)
		}
	}
	var rec jobRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Sprintf("corrupt JSON: %v", err)
	}
	if rec.Version < 1 || rec.Version > jobRecordVersion {
		return nil, fmt.Sprintf("unsupported record version %d", rec.Version)
	}
	if rec.ID == "" {
		return nil, "record has no job ID"
	}
	if want := "job-" + rec.ID + ".json"; name != want {
		return nil, fmt.Sprintf("filename does not match embedded job ID %s", rec.ID)
	}
	return &rec, ""
}
