package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"astrx/internal/durable"
)

// writeSealedRecord writes a job record the way the daemon does: sealed
// in a durable envelope, atomically.
func writeSealedRecord(t *testing.T, dir, filename string, rec jobRecord) {
	t.Helper()
	data, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := durable.WriteSealedAtomic(nil, filepath.Join(dir, filename), data); err != nil {
		t.Fatal(err)
	}
}

// quarantinedWithReason asserts a file was moved to quarantine/ and its
// reason sidecar mentions wantReason.
func quarantinedWithReason(t *testing.T, dir, name, wantReason string) {
	t.Helper()
	q := filepath.Join(dir, quarantineDir, name)
	if _, err := os.Stat(q); err != nil {
		t.Errorf("%s not quarantined: %v", name, err)
		return
	}
	reason, err := os.ReadFile(q + ".reason")
	if err != nil {
		t.Errorf("%s: no reason sidecar: %v", name, err)
		return
	}
	if !strings.Contains(string(reason), wantReason) {
		t.Errorf("%s quarantine reason %q does not mention %q", name, reason, wantReason)
	}
}

// TestFsckQuarantinesBadState walks the startup fsck through the issue's
// recovery edge cases in one state directory: a zero-byte record, a
// second record claiming an already-recovered job ID, an orphan
// checkpoint with no record, a record whose envelope checksum fails, an
// unsupported future version, and a stale temp file from an interrupted
// atomic write. Each bad file must land in quarantine/ with a reason —
// never abort startup, never be silently trusted.
func TestFsckQuarantinesBadState(t *testing.T) {
	dir := t.TempDir()

	// Healthy terminal record (the survivor).
	done := jobRecord{
		Version: jobRecordVersion, ID: "aaaa11112222", Deck: testDeck,
		Created: time.Now().Add(-time.Hour), State: StateDone,
		Result: &JobResult{ID: "aaaa11112222", State: StateDone},
	}
	writeSealedRecord(t, dir, "job-aaaa11112222.json", done)

	// Zero-byte record: the classic crash-during-create artifact.
	if err := os.WriteFile(filepath.Join(dir, "job-bbbb11112222.json"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	// A second file claiming the survivor's job ID.
	dup := done
	writeSealedRecord(t, dir, "job-cccc11112222.json", dup)

	// Orphan checkpoint: no record anywhere.
	if err := os.WriteFile(filepath.Join(dir, "job-dddd11112222.ckpt"), []byte("moves"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Bit rot: sealed record with a flipped payload byte.
	rot := jobRecord{Version: jobRecordVersion, ID: "ffff11112222", Deck: testDeck,
		Created: time.Now(), State: StateDone}
	writeSealedRecord(t, dir, "job-ffff11112222.json", rot)
	raw, err := os.ReadFile(filepath.Join(dir, "job-ffff11112222.json"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir, "job-ffff11112222.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A record from the future.
	future := jobRecord{Version: jobRecordVersion + 7, ID: "eeee11112222", Deck: testDeck,
		Created: time.Now(), State: StateDone}
	writeSealedRecord(t, dir, "job-eeee11112222.json", future)

	// Stale temp file from an interrupted atomic write.
	tmpName := ".job-aaaa11112222.json.tmp-99999"
	if err := os.WriteFile(filepath.Join(dir, tmpName), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := newTestManager(t, Options{StateDir: dir, Workers: 1})

	quarantinedWithReason(t, dir, "job-bbbb11112222.json", "zero-byte")
	quarantinedWithReason(t, dir, "job-cccc11112222.json", "aaaa11112222")
	quarantinedWithReason(t, dir, "job-dddd11112222.ckpt", "orphan checkpoint")
	quarantinedWithReason(t, dir, "job-ffff11112222.json", "envelope verification failed")
	quarantinedWithReason(t, dir, "job-eeee11112222.json", "unsupported record version")

	if _, err := os.Stat(filepath.Join(dir, tmpName)); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived the fsck (stat err: %v)", err)
	}

	// Exactly the survivor was recovered, with its history intact.
	j := m.Get("aaaa11112222")
	if j == nil || j.State() != StateDone || j.Result() == nil {
		t.Fatalf("survivor not recovered: %+v", j)
	}
	if got := len(m.Jobs()); got != 1 {
		t.Errorf("recovered %d jobs, want 1", got)
	}
}

// TestFsckRunningRecordWithoutCheckpoint: a job recorded as running
// whose checkpoint never made it to disk is requeued and restarts from
// scratch — the record alone is enough to not lose the job.
func TestFsckRunningRecordWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	rec := jobRecord{
		Version: jobRecordVersion, ID: "abcd11112222", Deck: testDeck,
		Options: JobOptions{Seed: 1, MaxMoves: 3000, Runs: 1},
		Created: time.Now(), State: StateRunning, Attempts: 1,
		History: []JobFailure{{Attempt: 1, Error: "stalled", Time: time.Now()}},
	}
	writeSealedRecord(t, dir, "job-abcd11112222.json", rec)

	m := newTestManager(t, Options{StateDir: dir, Workers: 1})
	j := m.Get("abcd11112222")
	if j == nil {
		t.Fatal("running record without checkpoint was not recovered")
	}
	j.mu.Lock()
	resume := j.resume
	attempts := j.attempts
	j.mu.Unlock()
	if resume != nil {
		t.Error("no checkpoint exists, yet a resume snapshot appeared")
	}
	if attempts != 1 {
		t.Errorf("supervision attempts not restored: got %d, want 1", attempts)
	}
	// Nothing to quarantine in this scenario.
	if _, err := os.Stat(filepath.Join(dir, quarantineDir)); !os.IsNotExist(err) {
		t.Errorf("unexpected quarantine directory (stat err: %v)", err)
	}
	// The restarted-from-scratch run completes normally.
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) && !j.State().terminal() {
		time.Sleep(20 * time.Millisecond)
	}
	if got := j.State(); got != StateDone {
		t.Errorf("requeued job ended %s, want done", got)
	}
}

// TestFsckAcceptsLegacyRawRecord: version-1 records predate the sealed
// envelope; a raw-JSON record must still recover so an upgraded daemon
// serves history written by its predecessor.
func TestFsckAcceptsLegacyRawRecord(t *testing.T) {
	dir := t.TempDir()
	rec := jobRecord{
		Version: 1, ID: "1234aaaabbbb", Deck: testDeck,
		Created: time.Now(), State: StateFailed, Error: "legacy failure",
		Result: &JobResult{ID: "1234aaaabbbb", State: StateFailed, Error: "legacy failure"},
	}
	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-1234aaaabbbb.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	m := newTestManager(t, Options{StateDir: dir, Workers: 1})
	j := m.Get("1234aaaabbbb")
	if j == nil || j.State() != StateFailed {
		t.Fatalf("legacy record not recovered: %+v", j)
	}
	if res := j.Result(); res == nil || res.Error != "legacy failure" {
		t.Errorf("legacy result: %+v", res)
	}
	// The next persist upgrades it to a sealed envelope in place.
	if err := m.persist(j); err != nil {
		t.Fatal(err)
	}
	upgraded, err := os.ReadFile(filepath.Join(dir, "job-1234aaaabbbb.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !durable.IsSealed(upgraded) {
		t.Error("persist did not upgrade the legacy record to a sealed envelope")
	}
}
