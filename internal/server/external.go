package server

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"astrx/internal/durable"
	"astrx/internal/oblx"
	"astrx/internal/retry"
)

// This file is the manager's external-execution seam: the surface a
// fleet coordinator (internal/fleet) drives when Options.ExternalExec
// is set. The manager keeps sole ownership of the durable job store,
// the queue, the SSE streams, and the retry/poison supervision policy;
// the coordinator decides *when* each transition happens (lease grant,
// expiry, completion) and calls in here to make it so. Lock order
// matters: these methods never hold j.mu while acquiring m.mu, matching
// the rest of the package.

// ClaimQueued pops the next fair-share-scheduled job and marks it
// running on behalf of an external executor, skipping jobs that turned
// terminal while queued. It returns nil when nothing is drainable
// (every lane empty or at its tenant's running cap) or the manager is
// draining. The fleet coordinator claims through here, so per-tenant
// fairness governs distributed mode exactly as it governs the local
// worker pool.
func (m *Manager) ClaimQueued() *Job {
	for {
		m.mu.Lock()
		if m.draining {
			m.mu.Unlock()
			return nil
		}
		j, tenant, ok := m.sched.Pop()
		if !ok {
			m.mu.Unlock()
			return nil
		}
		m.tenantQueued[tenant]--
		m.running++
		m.mu.Unlock()

		j.mu.Lock()
		if j.state != StateQueued { // cancelled while queued, raced with the pop
			j.mu.Unlock()
			m.mu.Lock()
			m.running--
			m.sched.DoneRunning(tenant)
			m.mu.Unlock()
			continue
		}
		j.state = StateRunning
		j.started = time.Now()
		j.lastTick = j.started
		attempt := j.attempts + 1
		j.publishLocked(Event{Type: "state", State: StateRunning})
		j.mu.Unlock()

		if err := m.persist(j); err != nil {
			m.jlog(j).Error("persist failed", "err", err)
		}
		m.noteClaimed(j)
		m.jlog(j).Info("job running", "state", StateRunning, "attempt", attempt)
		return j
	}
}

// RecordExternalProgress feeds one progress event from an external
// worker into the job: SSE fan-out, best-cost tracking, throughput
// metrics, the flight recorder, and the liveness tick — the same
// accounting a local run's Progress callback performs.
func (m *Manager) RecordExternalProgress(j *Job, ev oblx.ProgressEvent) {
	now := time.Now()
	m.jobTelem(j).flight.Record(ev.FlightRecord())
	m.mAccept.Set(ev.AcceptRatio)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return // late event from a fenced or finished run
	}
	if j.extEvals == nil {
		j.extEvals = make(map[int]int)
		j.extTime = make(map[int]time.Time)
	}
	if prev, ok := j.extEvals[ev.Run]; ok && ev.Evals > prev {
		m.mEvals.Add(int64(ev.Evals - prev))
		if dt := now.Sub(j.extTime[ev.Run]).Seconds(); dt > 0 {
			m.mEvalRate.Set(float64(ev.Evals-prev) / dt)
		}
	}
	j.extEvals[ev.Run] = ev.Evals
	j.extTime[ev.Run] = now

	p := ev
	j.lastProg = &p
	j.lastTick = now
	if math.IsNaN(j.bestCost) || ev.BestCost < j.bestCost {
		j.bestCost = ev.BestCost
	}
	j.publishLocked(Event{Type: "progress", Prog: &p})
}

// CompleteExternal commits a result shipped by the job's leaseholder,
// making the job terminal exactly once. A job that is no longer running
// here (already completed, requeued after a lease expiry, cancelled)
// rejects the commit with an error — the manager-level backstop under
// the fleet's epoch fencing.
func (m *Manager) CompleteExternal(j *Job, result *JobResult) error {
	state := result.State
	if !state.terminal() {
		state = StateFailed
		if result.Error == "" {
			result.Error = fmt.Sprintf("server: external completion with non-terminal state %q", result.State)
		}
	}
	result.ID = j.ID
	result.State = state

	// Remove the crash-recovery checkpoint before the terminal state
	// becomes observable, same ordering as finishJob.
	m.removeCheckpoint(j, state)

	now := time.Now()
	j.mu.Lock()
	if j.state != StateRunning {
		st := j.state
		j.mu.Unlock()
		return fmt.Errorf("server: job %s is %s, not running; completion rejected", j.ID, st)
	}
	j.state = state
	j.err = result.Error
	j.finished = now
	j.result = result
	j.publishLocked(Event{Type: "state", State: state, Error: result.Error})
	started := j.started
	j.mu.Unlock()

	m.reg.Counter("oblxd_jobs_finished_total", "state", string(state)).Inc()
	if !started.IsZero() {
		m.mJobSecs.Observe(now.Sub(started).Seconds())
	}
	if err := m.persist(j); err != nil {
		m.jlog(j).Error("persist failed", "err", err)
	}
	m.cacheStore(j, state, result)
	m.endJobTrace(j, traceStatus(state), string(state))
	if result.Error != "" {
		m.jlog(j).Warn("job finished", "state", state, "err", result.Error)
	} else {
		m.jlog(j).Info("job finished", "state", state)
	}

	m.mu.Lock()
	m.running--
	m.sched.DoneRunning(j.Tenant)
	m.cond.Signal()
	m.mu.Unlock()
	return nil
}

// RequeueExternal hands a leased job back to supervision after its
// executor died or stalled: the failure burns a supervised attempt, so
// the job is requeued with backoff while attempts remain and poisoned —
// terminal, with its failure history persisted — once they run out,
// exactly like a local watchdog kill.
func (m *Manager) RequeueExternal(j *Job, cause string) {
	j.mu.Lock()
	if j.state != StateRunning {
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()

	m.mu.Lock()
	m.running--
	m.sched.DoneRunning(j.Tenant)
	m.cond.Signal()
	m.mu.Unlock()
	m.retryOrPoison(j, cause)
}

// ReleaseExternal returns a leased job to the head of the queue without
// burning a supervised attempt — the graceful hand-off of a draining
// worker. A checkpoint the worker shipped first (PutCheckpointPayload)
// becomes the resume point for the next claimant.
func (m *Manager) ReleaseExternal(j *Job) {
	j.mu.Lock()
	if j.state != StateRunning {
		j.mu.Unlock()
		return
	}
	j.state = StateQueued
	j.started = time.Time{}
	if j.Options.Runs <= 1 && m.opt.StateDir != "" {
		if ck, err := oblx.LoadCheckpointFS(m.fsys, m.checkpointPath(j.ID)); err == nil {
			j.resume = ck
		}
	}
	j.publishLocked(Event{Type: "state", State: StateQueued})
	j.mu.Unlock()

	if err := m.persist(j); err != nil {
		m.jlog(j).Error("persist failed", "err", err)
	}
	m.markQueued(j)
	m.mu.Lock()
	m.running--
	m.sched.DoneRunning(j.Tenant)
	if !m.draining {
		// Head of the tenant's lane: the job was claimed first, so
		// per-lane FIFO order is preserved across the hand-off.
		m.sched.PushFront(j.Tenant, j)
		m.tenantQueued[j.Tenant]++
		m.cond.Signal()
	}
	m.mu.Unlock()
	m.jlog(j).Info("job released by worker", "state", StateQueued)
}

// PutCheckpointPayload validates and stores a checkpoint a fleet worker
// shipped for this job: it becomes the in-memory resume point
// immediately and is sealed to the state directory when one exists, so
// any other worker — under this coordinator incarnation or the next —
// resumes the anneal from this exact move.
func (m *Manager) PutCheckpointPayload(j *Job, payload []byte) error {
	ck, err := oblx.DecodeCheckpoint(payload)
	if err != nil {
		return fmt.Errorf("server: shipped checkpoint for job %s: %w", j.ID, err)
	}
	j.mu.Lock()
	if j.Options.Runs <= 1 {
		j.resume = ck
	}
	j.mu.Unlock()
	if m.opt.StateDir == "" {
		return nil
	}
	if err := durable.WriteSealedAtomic(m.fsys, m.checkpointPath(j.ID), payload); err != nil {
		m.noteStateDirError(err)
		return fmt.Errorf("server: persist shipped checkpoint for job %s: %w", j.ID, err)
	}
	m.noteStateDirOK()
	return nil
}

// ResumePayload returns the job's resume checkpoint as raw JSON, or nil
// when the next run starts from scratch. Claim responses carry it to
// the worker.
func (m *Manager) ResumePayload(j *Job) []byte {
	j.mu.Lock()
	ck := j.resume
	j.mu.Unlock()
	if ck == nil {
		return nil
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return nil
	}
	return data
}

// SnapshotExternalFlight persists the job's flight-recorder ring, so a
// fleet-supervised failure leaves the same post-mortem artifact a local
// watchdog kill does.
func (m *Manager) SnapshotExternalFlight(j *Job, cause string) {
	m.snapshotFlight(j, cause)
}

// QueueDepth reports the number of jobs waiting to be claimed.
func (m *Manager) QueueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sched.Len()
}

// RetryPolicy exposes the manager's supervised-retry policy, so the
// fleet coordinator paces per-run re-leases with the same schedule the
// manager applies to whole jobs.
func (m *Manager) RetryPolicy() retry.Policy { return m.rpol }

// Terminal reports whether the state is final (done, failed, or
// cancelled) — exported for fleet code and tests that watch jobs from
// outside the package.
func (s State) Terminal() bool { return s.terminal() }

// RequestID returns the submit-time correlation ID (X-Request-Id or
// traceparent trace ID). It is immutable once the job is published, so
// reading it unlocked is safe; claim responses propagate it to workers.
func (j *Job) RequestID() string { return j.requestID }

// UserCancelled reports whether a client asked to cancel this job. The
// coordinator polls it to turn DELETE into a cancel instruction on the
// next heartbeat of the job's leaseholder.
func (j *Job) UserCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.userCancelled
}
