package server

import (
	"encoding/json"
	"net/http"
	"path/filepath"
	"runtime/debug"
	"time"

	"astrx/internal/durable"
	"astrx/internal/telemetry"
)

// jobTelemetry bundles one job's observability instruments: the shared
// per-stage eval timer (funnelling into the oblxd_eval_stage_seconds
// histograms) and the annealer flight recorder. One bundle serves a job
// across supervised attempts, so a retried job's breakdown and move ring
// are cumulative.
type jobTelemetry struct {
	timer  *telemetry.EvalTimer
	flight *telemetry.FlightRecorder
}

// telemetrySampleEvery resolves the manager's sampling cadence: 0 means
// the default of one in 64 evaluations, negative disables stage timing.
func (m *Manager) telemetrySampleEvery() int {
	switch every := m.opt.TelemetrySampleEvery; {
	case every < 0:
		return 0
	case every == 0:
		return 64
	default:
		return every
	}
}

// jobTelem returns the job's telemetry bundle, creating it on first use
// (the first supervised attempt).
func (m *Manager) jobTelem(j *Job) *jobTelemetry {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.telem == nil {
		t := telemetry.NewEvalTimer(m.telemetrySampleEvery())
		t.OnSample(func(s telemetry.Stage, d time.Duration) {
			m.mStage[s].Observe(d.Seconds())
			// Each sampled stage timing doubles as an eval span in the
			// job's trace, parented under the current anneal span.
			j.trace.RecordEval(s.String(), d)
		})
		j.telem = &jobTelemetry{
			timer:  t,
			flight: telemetry.NewFlightRecorder(m.opt.FlightRecords),
		}
	}
	return j.telem
}

// flightPath is where a job's durable flight-recorder snapshot lives.
// The .flight suffix keeps it invisible to the job-record fsck, and —
// unlike checkpoints — the file deliberately survives the job turning
// terminal: it is the post-mortem artifact.
func (m *Manager) flightPath(id string) string {
	return filepath.Join(m.opt.StateDir, "job-"+id+".flight")
}

// snapshotFlight persists the job's flight recorder to the state dir,
// sealed like every other durable artifact. Called when supervision
// kills a run (stall, poison, deadline), so the last moves before death
// survive a daemon restart.
func (m *Manager) snapshotFlight(j *Job, cause string) {
	if m.opt.StateDir == "" {
		return
	}
	j.mu.Lock()
	telem := j.telem
	attempt := j.attempts
	j.mu.Unlock()
	if telem == nil {
		return
	}
	snap := telemetry.FlightSnapshot{
		Version:       telemetry.FlightSnapshotVersion,
		JobID:         j.ID,
		Cause:         cause,
		Time:          time.Now(),
		Attempt:       attempt,
		SampleEvery:   telem.timer.SampleEvery(),
		TotalRecorded: telem.flight.Total(),
		Stages:        telem.timer.Breakdown(),
		Moves:         telem.flight.Snapshot(),
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		m.jlog(j).Error("marshal flight snapshot failed", "err", err)
		return
	}
	if err := durable.WriteSealedAtomic(m.fsys, m.flightPath(j.ID), data); err != nil {
		m.noteStateDirError(err)
		m.jlog(j).Error("persist flight snapshot failed", "err", err)
		return
	}
	m.noteStateDirOK()
	m.jlog(j).Info("flight snapshot written", "cause", cause, "moves", len(snap.Moves))
}

// loadFlight reads a job's durable flight snapshot back, verifying the
// envelope and the schema version.
func (m *Manager) loadFlight(id string) (*telemetry.FlightSnapshot, error) {
	data, err := durable.ReadSealed(m.fsys, m.flightPath(id))
	if err != nil {
		return nil, err
	}
	return telemetry.DecodeFlightSnapshot(data)
}

// TelemetrySummary is the JSON body of GET /v1/jobs/{id}/telemetry: the
// per-stage timing breakdown plus the shape (not the content) of the
// flight-recorder ring. Source says whether it was read from the live
// recorder or a durable post-mortem snapshot.
type TelemetrySummary struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Source string `json:"source"` // "live" | "snapshot"
	// Cause/Time/Attempt describe the snapshot trigger (snapshot source
	// only).
	Cause         string                     `json:"cause,omitempty"`
	Time          *time.Time                 `json:"time,omitempty"`
	Attempt       int                        `json:"attempt,omitempty"`
	SampleEvery   int                        `json:"sample_every"`
	Records       int                        `json:"records"`
	TotalRecorded uint64                     `json:"total_recorded"`
	Stages        []telemetry.StageBreakdown `json:"stages,omitempty"`
	LastMove      *telemetry.MoveRecord      `json:"last_move,omitempty"`
}

// telemetryFor resolves a job's telemetry, preferring the live recorder
// (fresher while the job runs in this incarnation) over the durable
// snapshot. A nil summary means the job predates telemetry entirely.
func (m *Manager) telemetryFor(j *Job) (*TelemetrySummary, []telemetry.MoveRecord) {
	j.mu.Lock()
	telem := j.telem
	state := j.state
	j.mu.Unlock()

	if telem != nil {
		moves := telem.flight.Snapshot()
		sum := &TelemetrySummary{
			ID:            j.ID,
			State:         state,
			Source:        "live",
			SampleEvery:   telem.timer.SampleEvery(),
			Records:       len(moves),
			TotalRecorded: telem.flight.Total(),
			Stages:        telem.timer.Breakdown(),
		}
		if n := len(moves); n > 0 {
			sum.LastMove = &moves[n-1]
		}
		return sum, moves
	}

	snap, err := m.loadFlight(j.ID)
	if err != nil {
		return nil, nil
	}
	sum := &TelemetrySummary{
		ID:            j.ID,
		State:         state,
		Source:        "snapshot",
		Cause:         snap.Cause,
		Attempt:       snap.Attempt,
		SampleEvery:   snap.SampleEvery,
		Records:       len(snap.Moves),
		TotalRecorded: snap.TotalRecorded,
		Stages:        snap.Stages,
	}
	if !snap.Time.IsZero() {
		t := snap.Time
		sum.Time = &t
	}
	if n := len(snap.Moves); n > 0 {
		sum.LastMove = &snap.Moves[n-1]
	}
	return sum, snap.Moves
}

// handleTelemetry serves GET /v1/jobs/{id}/telemetry. Jobs submitted
// before this daemon gained telemetry (recovered records with no flight
// snapshot on disk) answer 409, not 500: the job exists, the artifact
// never did.
func (m *Manager) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	j := m.jobOr404(w, r)
	if j == nil {
		return
	}
	sum, _ := m.telemetryFor(j)
	if sum == nil {
		writeErr(w, http.StatusConflict,
			"job %s has no telemetry: it predates this daemon's recorder or never ran here", j.ID)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// handleTelemetryMoves serves GET /v1/jobs/{id}/telemetry/moves: the raw
// flight-recorder ring as JSONL, oldest move first.
func (m *Manager) handleTelemetryMoves(w http.ResponseWriter, r *http.Request) {
	j := m.jobOr404(w, r)
	if j == nil {
		return
	}
	sum, moves := m.telemetryFor(j)
	if sum == nil {
		writeErr(w, http.StatusConflict,
			"job %s has no telemetry: it predates this daemon's recorder or never ran here", j.ID)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = telemetry.WriteJSONL(w, moves)
}

// buildVersion extracts a human-useful version from the binary's build
// info: the module version when stamped, else the VCS revision, else
// "devel".
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			return s.Value[:12]
		}
	}
	return "devel"
}
