package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testDeck is a relaxed Simple OTA synthesis problem: same topology as
// the paper's Table 2 circuit, but with spec anchors loose enough that
// every non-objective spec is met within a few thousand moves. Server
// tests need jobs that finish (and succeed) in about a second, not the
// paper's 120k-move overnight runs.
const testDeck = `
.lib c2u
.module ota (inp inn out vdd vss)
m1 n1  inp ntail ntail nmos3 w=W1 l=L1
m2 out inn ntail ntail nmos3 w=W1 l=L1
m3 n1  n1  vdd  vdd  pmos3 w=W3 l=L3
m4 out n1  vdd  vdd  pmos3 w=W3 l=L3
m5 ntail nbias vss vss nmos3 w=W5 l=L5
m6 nbias nbias vss vss nmos3 w=W5 l=L5
ib vdd nbias Ib
.ends

.var W1 min=2u max=500u grid
.var L1 min=2u max=20u  grid
.var W3 min=2u max=500u grid
.var L3 min=2u max=20u  grid
.var W5 min=2u max=500u grid
.var L5 min=2u max=20u  grid
.var Ib min=2u max=250u cont

.const Cl 1p

.jig main
xamp inp inn out nvdd nvss ota
vdd nvdd 0 2.5
vss nvss 0 -2.5
vin inp 0 0 ac 1
vcm inn 0 0
cl1 out 0 Cl
.pz tf v(out) vin
.ends

.bias
xamp inp inn out nvdd nvss ota
vdd nvdd 0 2.5
vss nvss 0 -2.5
vi1 inp 0 0
vi2 inn 0 0
.ends

.obj  adm 'db(dc_gain(tf))' good=30 bad=5
.spec gbw 'ugf(tf)' good=1Meg bad=10k
.spec pm  'phase_margin(tf)' good=45 bad=15
.spec pwr 'power()' good=5m bad=50m
.region xamp.m1 sat
.region xamp.m2 sat
`

// tWriter adapts t.Logf to io.Writer so slog output lands in the test
// log. Writes after the test completes are dropped rather than panicking
// (late goroutines — backoff timers, watchdog ticks — may still log).
type tWriter struct{ t *testing.T }

func (w tWriter) Write(p []byte) (int, error) {
	defer func() { recover() }()
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// testLogger returns a debug-level structured logger writing into t.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(tWriter{t: t}, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// newTestManager starts a manager and registers cleanup-shutdown.
func newTestManager(t *testing.T, opt Options) *Manager {
	t.Helper()
	if opt.Workers == 0 {
		opt.Workers = 2
	}
	if opt.ProgressEvery == 0 {
		opt.ProgressEvery = 200
	}
	opt.Logger = testLogger(t)
	m, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

// submitJSON posts a deck through the HTTP API and returns the job ID.
func submitJSON(t *testing.T, ts *httptest.Server, deck string, opt JobOptions) string {
	t.Helper()
	body, _ := json.Marshal(submitRequest{Deck: deck, Options: opt})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e apiError
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, e.Error)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("submit: bad status %+v", st)
	}
	return st.ID
}

// readSSE consumes the job's event stream until the terminal state
// event, returning the number of progress events and the final state.
func readSSE(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) (progress int, final State) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("events: bad payload %q: %v", line, err)
		}
		switch ev.Type {
		case "progress":
			progress++
			if ev.Prog == nil {
				t.Fatal("progress event without payload")
			}
		case "state":
			if ev.State.terminal() {
				return progress, ev.State
			}
		}
	}
	t.Fatalf("event stream ended without a terminal state (scan err: %v)", sc.Err())
	return 0, ""
}

// waitState polls a job until it reaches want or the timeout expires.
func waitState(t *testing.T, j *Job, want State, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.ID, j.State(), want)
}

// TestLifecycle covers the whole happy path over HTTP: submit, watch the
// event stream, fetch the verified result.
func TestLifecycle(t *testing.T) {
	m := newTestManager(t, Options{})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	id := submitJSON(t, ts, testDeck, JobOptions{Seed: 1, MaxMoves: 4000, ProgressEvery: 200})

	prog, final := readSSE(t, ts, id, 2*time.Minute)
	if final != StateDone {
		t.Fatalf("final state %s, want done", final)
	}
	if prog < 3 {
		t.Errorf("got %d progress events, want >= 3", prog)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	var res JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.State != StateDone {
		t.Fatalf("result state %s", res.State)
	}
	if res.Result == nil || len(res.Result.Variables) == 0 {
		t.Fatal("result has no design variables")
	}
	if res.Verify == nil {
		t.Fatalf("result has no verification (verify_error: %s)", res.VerifyError)
	}
	for _, s := range res.Verify.Specs {
		if !s.Objective && !s.Met {
			t.Errorf("spec %s not met: simulated %g (good=%g bad=%g)",
				s.Name, s.Simulated, s.Good, s.Bad)
		}
	}

	// Status endpoint reflects the terminal state and best cost.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st Status
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.BestCost == nil || st.Finished == nil {
		t.Errorf("status after completion: %+v", st)
	}

	// The metrics endpoint reports the finished job.
	resp3, err := http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp3.Body)
	text := buf.String()
	for _, want := range []string{
		"oblxd_jobs_submitted_total 1",
		`oblxd_jobs_finished_total{state="done"} 1`,
		"oblxd_evals_total",
		"oblxd_job_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestSubmitRejectsBadDecks: parse and validation failures are HTTP 400
// with a useful message, before any synthesis work happens.
func TestSubmitRejectsBadDecks(t *testing.T) {
	m := newTestManager(t, Options{})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	post := func(deck string) (int, string) {
		body, _ := json.Marshal(submitRequest{Deck: deck})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e apiError
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e.Error
	}

	if code, msg := post("this is not a deck"); code != http.StatusBadRequest {
		t.Errorf("garbage deck: status %d (%s), want 400", code, msg)
	}
	// Validation-level failure: spec measuring a transfer function no
	// .pz declares.
	bad := strings.Replace(testDeck, "ugf(tf)", "ugf(nosuch)", 1)
	code, msg := post(bad)
	if code != http.StatusBadRequest {
		t.Errorf("dangling TF: status %d, want 400", code)
	}
	if !strings.Contains(msg, "nosuch") {
		t.Errorf("error %q does not name the dangling transfer function", msg)
	}
	if code, _ := post(""); code != http.StatusBadRequest {
		t.Errorf("empty deck: status %d, want 400", code)
	}
}

// TestCancelMidRun: DELETE on a running job cancels it; the partial
// best-so-far result is kept and served.
func TestCancelMidRun(t *testing.T) {
	m := newTestManager(t, Options{})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	// A move budget far beyond what the test waits for.
	id := submitJSON(t, ts, testDeck, JobOptions{Seed: 1, MaxMoves: 5_000_000, ProgressEvery: 100})
	j := m.Get(id)
	if j == nil {
		t.Fatal("job not found in manager")
	}
	waitState(t, j, StateRunning, time.Minute)
	time.Sleep(50 * time.Millisecond) // let it anneal a little

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	waitState(t, j, StateCancelled, time.Minute)
	res := j.Result()
	if res == nil || res.State != StateCancelled {
		t.Fatalf("cancelled job result: %+v", res)
	}
	if res.Result == nil || !res.Result.Cancelled {
		t.Error("cancelled job should keep its best-so-far result view")
	}

	// Cancelling a terminal job is a conflict.
	resp2, err := http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("double cancel: status %d, want 409", resp2.StatusCode)
	}
}

// TestCancelQueued: cancelling a job that never reached a worker is
// immediate and terminal.
func TestCancelQueued(t *testing.T) {
	// One worker, occupied by a long job, so the second stays queued.
	m := newTestManager(t, Options{Workers: 1})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	long := submitJSON(t, ts, testDeck, JobOptions{Seed: 1, MaxMoves: 5_000_000})
	queued := submitJSON(t, ts, testDeck, JobOptions{Seed: 2, MaxMoves: 4000})

	j := m.Get(queued)
	if got := j.State(); got != StateQueued {
		t.Fatalf("second job is %s, want queued", got)
	}
	if err := m.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	if got := j.State(); got != StateCancelled {
		t.Fatalf("after cancel: %s", got)
	}
	if res := j.Result(); res == nil || res.State != StateCancelled {
		t.Fatalf("queued-cancel result: %+v", res)
	}
	// Unblock the worker for cleanup shutdown.
	if err := m.Cancel(long); err != nil {
		t.Fatal(err)
	}
}

// TestResultBeforeTerminalConflicts: the result endpoint refuses to
// serve a job that is still queued or running.
func TestResultBeforeTerminalConflicts(t *testing.T) {
	m := newTestManager(t, Options{})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	id := submitJSON(t, ts, testDeck, JobOptions{Seed: 1, MaxMoves: 5_000_000})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result while running: status %d, want 409", resp.StatusCode)
	}
	m.Cancel(id)
}

// TestUnknownJob404s across all per-job endpoints.
func TestUnknownJob404s(t *testing.T) {
	m := newTestManager(t, Options{})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	for _, ep := range []string{"/v1/jobs/deadbeef", "/v1/jobs/deadbeef/events", "/v1/jobs/deadbeef/result"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", ep, resp.StatusCode)
		}
	}
}

// TestSubmitPlainText: the curl-friendly path — raw deck body, options
// in query parameters.
func TestSubmitPlainText(t *testing.T) {
	m := newTestManager(t, Options{})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	url := fmt.Sprintf("%s/v1/jobs?seed=3&max_moves=4000&progress_every=500", ts.URL)
	resp, err := http.Post(url, "text/plain", strings.NewReader(testDeck))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plain-text submit: status %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Options.Seed != 3 || st.Options.MaxMoves != 4000 {
		t.Errorf("options not picked up from query: %+v", st.Options)
	}
	m.Cancel(st.ID)
}

// TestDrainingRejectsSubmissions: after Shutdown begins, new submissions
// get 503.
func TestDrainingRejectsSubmissions(t *testing.T) {
	m := newTestManager(t, Options{})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(submitRequest{Deck: testDeck})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", resp.StatusCode)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp2.StatusCode)
	}
}

// TestProfilingEndpointGated checks that /debug/pprof/ exists only when
// Options.EnableProfiling is set — the profile endpoints leak internal
// state and must stay off by default.
func TestProfilingEndpointGated(t *testing.T) {
	get := func(ts *httptest.Server, path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	off := newTestManager(t, Options{})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	if code := get(tsOff, "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof index with profiling off: status %d, want 404", code)
	}

	on := newTestManager(t, Options{EnableProfiling: true})
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	if code := get(tsOn, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof index with profiling on: status %d, want 200", code)
	}
	if code := get(tsOn, "/debug/pprof/heap"); code != http.StatusOK {
		t.Errorf("pprof heap with profiling on: status %d, want 200", code)
	}
	// Metrics stay available in both configurations.
	if code := get(tsOff, "/debug/metrics"); code != http.StatusOK {
		t.Errorf("metrics with profiling off: status %d, want 200", code)
	}
}

// TestSubmitCorneredPlainText: the curl-friendly corner surface — raw
// deck with .corner cards, selection in the corners= query parameter.
// The finished result must carry the per-corner breakdown, and an
// unknown corner name must be rejected at the door.
func TestSubmitCorneredPlainText(t *testing.T) {
	deck := testDeck + "\n.corner slow vdd=2.4\n.corner fast vdd=2.6\n"
	m := newTestManager(t, Options{})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs?seed=1&max_moves=3000&corners=slow", "text/plain", strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cornered submit: status %d", resp.StatusCode)
	}
	if len(st.Options.Corners) != 1 || st.Options.Corners[0] != "slow" {
		t.Fatalf("corners not picked up from query: %+v", st.Options.Corners)
	}
	j := m.Get(st.ID)
	if j == nil {
		t.Fatal("submitted job not found")
	}
	waitState(t, j, StateDone, 2*time.Minute)
	res := j.Result()
	if res == nil || res.Result == nil {
		t.Fatal("done job has no result")
	}
	corners := res.Result.Corners
	if len(corners) != 2 { // nominal + slow
		t.Fatalf("per-corner breakdown has %d lanes, want 2: %+v", len(corners), corners)
	}
	if corners[0].Name != "nominal" || corners[1].Name != "slow" {
		t.Errorf("lane names %q/%q, want nominal/slow", corners[0].Name, corners[1].Name)
	}

	resp, err = http.Post(ts.URL+"/v1/jobs?corners=bogus", "text/plain", strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown corner: status %d, want 400", resp.StatusCode)
	}
}
