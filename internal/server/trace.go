package server

import (
	"net/http"
	"path/filepath"
	"time"

	"astrx/internal/durable"
	"astrx/internal/metrics"
	"astrx/internal/trace"
)

// This file is the manager's distributed-tracing seam: every job carries
// a trace.Recorder from submit to terminal state, the lifecycle spans
// (job root, submit, queue-wait, anneal, per-corner lanes) land in it
// from both local workers and fleet workers, and the tree is served at
// GET /v1/jobs/{id}/trace — live while the recorder exists, from the
// durable snapshot (job-<id>.trace) afterwards.
//
// Lock order: recorder methods that complete spans fire the OnEnd
// histogram hook, which takes the metrics-registry lock; the exposition
// path holds that lock while gauge funcs take m.mu and j.mu. So span
// Begin/End/AddTimed/Add calls here always happen OUTSIDE j.mu and m.mu.

// initJobTrace builds the job's recorder from the submit-time W3C
// traceparent header (the client's trace continues into the job) or,
// absent/malformed, from the request ID. Must run before the job is
// published: j.trace and j.rootSpan are immutable afterwards, like
// j.requestID.
func (m *Manager) initJobTrace(j *Job, traceparent string) {
	var tid, remoteParent string
	if tc, err := trace.Parse(traceparent); err == nil {
		tid, remoteParent = tc.TraceID, tc.SpanID
	} else {
		tid = trace.TraceIDFromRequest(j.requestID)
	}
	m.attachJobTrace(j, trace.Context{TraceID: tid, SpanID: trace.RootSpanID(tid)}, remoteParent)
}

// attachJobTrace wires a recorder for the given trace context onto the
// job and opens the deterministic root span. Recovery reattaches with
// the persisted context, so a restarted daemon keeps extending the same
// trace tree.
func (m *Manager) attachJobTrace(j *Job, tc trace.Context, remoteParent string) {
	rec := trace.NewRecorder(tc, m.opt.TraceRecords)
	rec.OnEnd(func(name string, d time.Duration) {
		m.reg.Histogram("oblxd_span_duration_seconds", metrics.DurationBuckets,
			"span", name).Observe(d.Seconds())
	})
	root := rec.BeginRoot("job", remoteParent)
	root.SetAttr("job", j.ID)
	root.SetAttr("tenant", j.Tenant)
	j.trace = rec
	j.traceRemote = remoteParent
	j.rootSpan = root
}

// Trace exposes the job's span recorder (nil for recovered terminal
// jobs). Immutable once the job is published, so the unlocked read is
// safe; the fleet coordinator records claim spans and ingests shipped
// worker spans through it.
func (j *Job) Trace() *trace.Recorder { return j.trace }

// TraceContext renders the job's propagation context ("" when the job
// has no recorder): trace ID plus the deterministic root span ID, which
// is what claim responses carry to workers and what the job record
// persists.
func (j *Job) TraceContext() string { return j.trace.Traceparent() }

// AddTraceSpans ingests spans shipped by the job's fleet leaseholder.
// The coordinator calls it only after epoch fencing succeeds, so a
// zombie worker's spans never pollute the trace.
func (m *Manager) AddTraceSpans(j *Job, spans []trace.Span) {
	for _, sp := range spans {
		j.trace.Add(sp)
	}
}

// markQueued notes that the job entered (or re-entered) the queue: it
// stamps the queue-wait start time and opens the queue-wait span. Both
// are idempotent, so racing callers cannot double-start a wait.
func (m *Manager) markQueued(j *Job) {
	j.mu.Lock()
	need := j.queueSpan == nil
	if j.queuedAt.IsZero() {
		j.queuedAt = time.Now()
	}
	j.mu.Unlock()
	if !need {
		return
	}
	sp := j.trace.Begin("queue-wait", "")
	sp.SetAttr("tenant", j.Tenant)
	j.mu.Lock()
	if j.queueSpan == nil && !j.state.terminal() {
		j.queueSpan = sp
		sp = nil
	}
	j.mu.Unlock()
	sp.End("") // lost the race; close the orphan
}

// noteClaimed closes the queue-wait span and observes the submit→claim
// latency histogram. Called when a local worker picks the job up and
// when the fleet coordinator grants a claim.
func (m *Manager) noteClaimed(j *Job) {
	j.mu.Lock()
	sp := j.queueSpan
	j.queueSpan = nil
	waited := time.Duration(0)
	if !j.queuedAt.IsZero() {
		waited = time.Since(j.queuedAt)
		j.queuedAt = time.Time{}
	}
	j.mu.Unlock()
	sp.End("")
	if waited > 0 {
		m.reg.Histogram("oblxd_queue_wait_seconds", metrics.DurationBuckets,
			"tenant", j.Tenant).Observe(waited.Seconds())
	}
}

// endJobTrace closes the job's trace at a terminal state: any open
// queue-wait span and the root span end with the given status, and the
// snapshot goes to the state dir so the tree outlives the process.
func (m *Manager) endJobTrace(j *Job, status, cause string) {
	j.mu.Lock()
	qs, root := j.queueSpan, j.rootSpan
	j.queueSpan, j.rootSpan = nil, nil
	j.mu.Unlock()
	qs.End(status)
	root.SetAttr("state", cause)
	root.End(status)
	m.snapshotTrace(j, cause)
}

// tracePath is where a job's durable trace snapshot lives. Like the
// .flight artifact, the suffix keeps it invisible to the job-record
// fsck and the file deliberately survives the job turning terminal.
func (m *Manager) tracePath(id string) string {
	return filepath.Join(m.opt.StateDir, "job-"+id+".trace")
}

// snapshotTrace seals the recorder's current span set (open spans
// included, flagged) into the state dir. Called at terminal states and
// wherever the flight recorder snapshots (stall, poison, deadline,
// shutdown), so the spans of a killed run survive the daemon.
func (m *Manager) snapshotTrace(j *Job, cause string) {
	if m.opt.StateDir == "" || j.trace == nil {
		return
	}
	spans := j.trace.Snapshot()
	data, err := trace.EncodeSnapshot(trace.SnapshotHeader{
		TraceID: j.trace.TraceID(),
		Label:   j.ID,
		Cause:   cause,
		Time:    time.Now(),
		Dropped: j.trace.Dropped(),
	}, spans)
	if err != nil {
		m.jlog(j).Error("encode trace snapshot failed", "err", err)
		return
	}
	if err := durable.WriteSealedAtomic(m.fsys, m.tracePath(j.ID), data); err != nil {
		m.noteStateDirError(err)
		m.jlog(j).Error("persist trace snapshot failed", "err", err)
		return
	}
	m.noteStateDirOK()
	m.jlog(j).Info("trace snapshot written", "cause", cause, "spans", len(spans))
}

// loadTraceSnapshot reads a job's durable trace snapshot back, verifying
// the envelope and the payload version.
func (m *Manager) loadTraceSnapshot(id string) (trace.SnapshotHeader, []trace.Span, error) {
	data, err := durable.ReadSealed(m.fsys, m.tracePath(id))
	if err != nil {
		return trace.SnapshotHeader{}, nil, err
	}
	return trace.DecodeSnapshot(data)
}

// seedTraceFromSnapshot re-ingests a prior incarnation's completed spans
// into a freshly attached recorder, so a daemon restart keeps the job's
// trace one tree. Open spans are skipped: the root reopens with the same
// deterministic ID, and a killed attempt's half-open spans are gone with
// the process that owned them.
func (m *Manager) seedTraceFromSnapshot(j *Job) {
	if m.opt.StateDir == "" {
		return
	}
	_, spans, err := m.loadTraceSnapshot(j.ID)
	if err != nil {
		return
	}
	for _, sp := range spans {
		j.trace.Add(sp) // Add drops open spans and foreign trace IDs
	}
}

// TraceSummary is the JSON body of GET /v1/jobs/{id}/trace: the job's
// span tree plus where it came from. Source is "live" while the
// recorder exists in this incarnation, "snapshot" when served from the
// durable artifact of a previous one.
type TraceSummary struct {
	ID      string        `json:"id"`
	State   State         `json:"state"`
	TraceID string        `json:"trace_id"`
	Source  string        `json:"source"` // "live" | "snapshot"
	Cause   string        `json:"cause,omitempty"`
	Time    *time.Time    `json:"time,omitempty"`
	Spans   int           `json:"spans"`
	Dropped int           `json:"dropped,omitempty"`
	Tree    []*trace.Node `json:"tree"`
}

// traceFor resolves a job's trace, preferring the live recorder over
// the durable snapshot. A nil summary means the job predates tracing.
func (m *Manager) traceFor(j *Job) *TraceSummary {
	state := j.State()
	if rec := j.trace; rec != nil {
		spans := rec.Snapshot()
		return &TraceSummary{
			ID:      j.ID,
			State:   state,
			TraceID: rec.TraceID(),
			Source:  "live",
			Spans:   len(spans),
			Dropped: rec.Dropped(),
			Tree:    trace.Tree(spans),
		}
	}
	hdr, spans, err := m.loadTraceSnapshot(j.ID)
	if err != nil {
		return nil
	}
	sum := &TraceSummary{
		ID:      j.ID,
		State:   state,
		TraceID: hdr.TraceID,
		Source:  "snapshot",
		Cause:   hdr.Cause,
		Spans:   len(spans),
		Dropped: hdr.Dropped,
		Tree:    trace.Tree(spans),
	}
	if !hdr.Time.IsZero() {
		t := hdr.Time
		sum.Time = &t
	}
	return sum
}

// handleTrace serves GET /v1/jobs/{id}/trace. Jobs recovered from
// records written before the daemon gained tracing (no recorder, no
// snapshot on disk) answer 409, matching the telemetry endpoint.
func (m *Manager) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := m.jobOr404(w, r)
	if j == nil {
		return
	}
	sum := m.traceFor(j)
	if sum == nil {
		writeErr(w, http.StatusConflict,
			"job %s has no trace: it predates this daemon's tracer", j.ID)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}
