package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"astrx/internal/metrics"
	"astrx/internal/rescache"
	"astrx/internal/tenancy"
)

// testAuth builds an Authenticator from inline key-file JSON.
func testAuth(t *testing.T, content string) *tenancy.Authenticator {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys.json")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	a, err := tenancy.NewAuthenticator(path)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// testCache builds a result cache over dir on the given registry.
func testCache(t *testing.T, dir string, mode rescache.Mode, reg *metrics.Registry) *rescache.Cache {
	t.Helper()
	c, err := rescache.New(rescache.Options{Mode: mode, Dir: dir, Registry: reg, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheHitSkipsEval is the acceptance drill for the result cache:
// an identical (deck, options) resubmission with -cache-mode rw must
// complete via cache hit — terminal at submit time, marked cache_hit,
// a single terminal SSE event — without consuming one evaluation,
// proven by the evals counter.
func TestCacheHitSkipsEval(t *testing.T) {
	cdir := t.TempDir()
	reg := metrics.New()
	cache := testCache(t, cdir, rescache.RW, reg)
	m := newTestManager(t, Options{StateDir: t.TempDir(), Workers: 2, Registry: reg, Cache: cache})

	opt := JobOptions{Seed: 1, MaxMoves: 4000, ProgressEvery: 200}
	j1, err := m.Submit(testDeck, opt)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone, 60*time.Second)

	// finishJob stores into the cache after the state flips; wait for
	// the entry to land.
	deadline := time.Now().Add(10 * time.Second)
	for cache.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("finished job never reached the cache")
		}
		time.Sleep(10 * time.Millisecond)
	}

	evalsBefore := m.Registry().Counter("oblxd_evals_total").Value()
	hitsBefore := m.Registry().Counter("oblxd_cache_hits_total").Value()

	// Identical resubmission — different surface formatting, same
	// canonical deck — must hit.
	j2, err := m.Submit(testDeck+"\n* trailing comment\n", opt)
	if err != nil {
		t.Fatal(err)
	}
	if j2.State() != StateDone {
		t.Fatalf("cache-hit job not terminal at submit: %s", j2.State())
	}
	st := j2.Status()
	if !st.CacheHit {
		t.Error("cache-hit job not marked cache_hit")
	}
	if st.DeckHash == "" || st.DeckHash != j1.Status().DeckHash {
		t.Errorf("deck hash mismatch: %q vs %q", st.DeckHash, j1.Status().DeckHash)
	}
	if res := j2.Result(); res == nil || res.State != StateDone || res.Result == nil {
		t.Fatalf("cache-hit job has no servable result: %+v", res)
	}
	if got := m.Registry().Counter("oblxd_evals_total").Value(); got != evalsBefore {
		t.Errorf("cache hit consumed evaluations: %d -> %d", evalsBefore, got)
	}
	if got := m.Registry().Counter("oblxd_cache_hits_total").Value(); got != hitsBefore+1 {
		t.Errorf("cache hits counter %d, want %d", got, hitsBefore+1)
	}

	// The event stream is a single terminal event — no queued, no
	// running, no progress.
	replay, _, cancel := j2.Subscribe()
	cancel()
	if len(replay) != 1 || replay[0].Type != "state" || replay[0].State != StateDone {
		t.Fatalf("cache-hit replay = %+v, want one terminal state event", replay)
	}

	// A different seed is a different key: must miss and queue normally.
	j3, err := m.Submit(testDeck, JobOptions{Seed: 99, MaxMoves: 4000, ProgressEvery: 200})
	if err != nil {
		t.Fatal(err)
	}
	if j3.Status().CacheHit {
		t.Error("different-seed submission served from cache")
	}
	waitState(t, j3, StateDone, 60*time.Second)
}

// TestCacheHitSurvivesRestart: the cache is durable — a new daemon
// incarnation over the same cache dir serves the hit.
func TestCacheHitSurvivesRestart(t *testing.T) {
	cdir := t.TempDir()
	opt := JobOptions{Seed: 1, MaxMoves: 4000, ProgressEvery: 200}

	c1 := testCache(t, cdir, rescache.RW, nil)
	m1 := newTestManager(t, Options{Workers: 2, Cache: c1})
	j1, err := m1.Submit(testDeck, opt)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone, 60*time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for c1.Len() == 0 && !time.Now().After(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	c2 := testCache(t, cdir, rescache.RO, nil)
	m2 := newTestManager(t, Options{Workers: 2, Cache: c2})
	j2, err := m2.Submit(testDeck, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Status().CacheHit {
		t.Fatal("restarted cache did not serve the hit")
	}
}

// TestCacheCorruptionChaos is the tenancy-chaos cache drill: a
// corrupted cache entry must quarantine and re-run — never serve a
// wrong answer, never crash the daemon.
func TestCacheCorruptionChaos(t *testing.T) {
	cdir := t.TempDir()
	opt := JobOptions{Seed: 1, MaxMoves: 4000, ProgressEvery: 200}

	c1 := testCache(t, cdir, rescache.RW, nil)
	m1 := newTestManager(t, Options{Workers: 2, Cache: c1})
	j1, err := m1.Submit(testDeck, opt)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateDone, 60*time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for c1.Len() == 0 && !time.Now().After(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	// Corrupt every cache entry on disk.
	entries, err := os.ReadDir(cdir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "res-") {
			continue
		}
		p := filepath.Join(cdir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no cache entries found to corrupt")
	}

	// Restart: the scan quarantines the corrupt entry; the resubmission
	// re-runs and produces a real result.
	c2 := testCache(t, cdir, rescache.RW, nil)
	m2 := newTestManager(t, Options{Workers: 2, Cache: c2})
	j2, err := m2.Submit(testDeck, opt)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Status().CacheHit {
		t.Fatal("corrupt cache entry served as a hit")
	}
	waitState(t, j2, StateDone, 60*time.Second)
	if res := j2.Result(); res == nil || res.Result == nil {
		t.Fatal("re-run produced no result")
	}
	if q, err := os.ReadDir(filepath.Join(cdir, "quarantine")); err != nil || len(q) == 0 {
		t.Fatalf("corrupt entries not quarantined: %v", err)
	}
}

const twoTenantKeys = `{
  "tenants": [
    {"name": "heavy", "keys": ["k-heavy"], "weight": 3, "quota": {"max_queued": 100}},
    {"name": "light", "keys": ["k-light"], "weight": 1, "quota": {"max_queued": 100}}
  ]
}`

// TestCancelQueuedReleasesQuota is the regression test for the
// cancel-while-queued quota leak: DELETE on a still-queued job must
// free the tenant's MaxQueued slot immediately, not when a worker
// would have reached it.
func TestCancelQueuedReleasesQuota(t *testing.T) {
	auth := testAuth(t, `{"tenants":[{"name":"acme","keys":["k"],"quota":{"max_queued":1}}]}`)
	// ExternalExec: no local workers, so queued jobs stay queued.
	m := newTestManager(t, Options{ExternalExec: true, Auth: auth})

	j1, err := m.SubmitAs(testDeck, JobOptions{Seed: 1}, "", "acme")
	if err != nil {
		t.Fatal(err)
	}
	var qe *QuotaError
	if _, err := m.SubmitAs(testDeck, JobOptions{Seed: 2}, "", "acme"); err == nil {
		t.Fatal("second submit admitted past max_queued 1")
	} else if !errors.As(err, &qe) {
		t.Fatalf("second submit error %T %v, want *QuotaError", err, err)
	}

	if err := m.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	// The slot must be free right now — no drain, no worker involved.
	j3, err := m.SubmitAs(testDeck, JobOptions{Seed: 3}, "", "acme")
	if err != nil {
		t.Fatalf("submit after cancel still over quota: %v", err)
	}
	if j3.State() != StateQueued {
		t.Fatalf("third job state %s", j3.State())
	}
}

// TestQuotaExhaustionConcurrentSubmits is the tenancy-chaos admission
// drill: N racing submissions against a MaxQueued bound admit exactly
// the bound, never more — the admission counter covers the
// persist-before-enqueue window.
func TestQuotaExhaustionConcurrentSubmits(t *testing.T) {
	const bound = 5
	auth := testAuth(t, fmt.Sprintf(`{"tenants":[{"name":"acme","keys":["k"],"quota":{"max_queued":%d}}]}`, bound))
	m := newTestManager(t, Options{ExternalExec: true, Auth: auth})

	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted, rejected := 0, 0
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			_, err := m.SubmitAs(testDeck, JobOptions{Seed: seed}, "", "acme")
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				admitted++
			default:
				var qe *QuotaError
				if !errors.As(err, &qe) {
					t.Errorf("unexpected submit error: %v", err)
				}
				rejected++
			}
		}(int64(i + 1))
	}
	wg.Wait()
	if admitted != bound || rejected != 20-bound {
		t.Fatalf("admitted %d rejected %d, want %d/%d", admitted, rejected, bound, 20-bound)
	}
	if d := m.QueueDepth(); d != bound {
		t.Fatalf("queue depth %d, want %d", d, bound)
	}
}

// TestTwoTenantFairShare is the end-to-end fairness drill: two
// backlogged tenants with 3:1 weights drain through ClaimQueued (the
// same path the fleet coordinator uses) at a 3:1 ratio, and neither is
// starved.
func TestTwoTenantFairShare(t *testing.T) {
	auth := testAuth(t, twoTenantKeys)
	m := newTestManager(t, Options{ExternalExec: true, Auth: auth})

	for i := 0; i < 60; i++ {
		if _, err := m.SubmitAs(testDeck, JobOptions{Seed: int64(i + 1)}, "", "heavy"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := m.SubmitAs(testDeck, JobOptions{Seed: int64(i + 1)}, "", "light"); err != nil {
			t.Fatal(err)
		}
	}

	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		j := m.ClaimQueued()
		if j == nil {
			t.Fatalf("claim %d returned nil with %d queued", i, m.QueueDepth())
		}
		counts[j.Tenant]++
	}
	if counts["light"] == 0 || counts["heavy"] == 0 {
		t.Fatalf("a tenant was starved: %v", counts)
	}
	ratio := float64(counts["heavy"]) / float64(counts["light"])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("drain ratio %.2f (%v), want ~3.0", ratio, counts)
	}
}

// TestTenantLanesRecoverInOrder proves restart recovery rebuilds each
// tenant's lane in submission order from the state dir.
func TestTenantLanesRecoverInOrder(t *testing.T) {
	dir := t.TempDir()
	auth := testAuth(t, twoTenantKeys)

	m1, err := New(Options{StateDir: dir, ExternalExec: true, Auth: auth, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	submitOrder := map[string][]string{} // tenant -> job IDs in submit order
	for i, tn := range []string{"heavy", "light", "heavy", "light", "heavy"} {
		j, err := m1.SubmitAs(testDeck, JobOptions{Seed: int64(i + 1)}, "", tn)
		if err != nil {
			t.Fatal(err)
		}
		submitOrder[tn] = append(submitOrder[tn], j.ID)
		time.Sleep(2 * time.Millisecond) // distinct Created stamps
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Options{StateDir: dir, ExternalExec: true, Auth: auth})
	claimed := map[string][]string{}
	for j := m2.ClaimQueued(); j != nil; j = m2.ClaimQueued() {
		claimed[j.Tenant] = append(claimed[j.Tenant], j.ID)
		if j.DeckHash == "" {
			t.Errorf("recovered job %s lost its deck hash", j.ID)
		}
	}
	for tn, want := range submitOrder {
		got := claimed[tn]
		if len(got) != len(want) {
			t.Fatalf("tenant %s: claimed %d jobs, want %d", tn, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tenant %s lane out of order after restart: got %v want %v", tn, got, want)
			}
		}
	}
}

// TestAuthHTTP covers the HTTP authentication surface: 401 without or
// with a bad key, tenant isolation on reads, hash and tenant in the
// status payload, and open operational endpoints.
func TestAuthHTTP(t *testing.T) {
	auth := testAuth(t, twoTenantKeys)
	m := newTestManager(t, Options{ExternalExec: true, Auth: auth})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	get := func(path, key string) *http.Response {
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	for _, key := range []string{"", "wrong"} {
		resp := get("/v1/jobs", key)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("key %q: status %d, want 401", key, resp.StatusCode)
		}
	}

	// Submit as heavy.
	body, _ := json.Marshal(submitRequest{Deck: testDeck, Options: JobOptions{Seed: 1}})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer k-heavy")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if st.Tenant != "heavy" || st.DeckHash == "" {
		t.Fatalf("status missing tenancy fields: %+v", st)
	}

	// The other tenant cannot see it.
	resp = get("/v1/jobs/"+st.ID, "k-light")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant read: status %d, want 404", resp.StatusCode)
	}
	// The owner can.
	resp = get("/v1/jobs/"+st.ID, "k-heavy")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner read: status %d", resp.StatusCode)
	}

	// Operational endpoints stay open.
	for _, path := range []string{"/healthz", "/debug/metrics"} {
		resp := get(path, "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, want 200 without a key", path, resp.StatusCode)
		}
	}
}

// TestQuota429RetryAfter: an over-quota submission gets 429 with a
// Retry-After estimate, per-tenant — the other tenant still submits.
func TestQuota429RetryAfter(t *testing.T) {
	auth := testAuth(t, `{"tenants":[
		{"name":"small","keys":["k-small"],"quota":{"max_queued":1}},
		{"name":"big","keys":["k-big"]}]}`)
	m := newTestManager(t, Options{ExternalExec: true, Auth: auth})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	post := func(key string, seed int64) *http.Response {
		body, _ := json.Marshal(submitRequest{Deck: testDeck, Options: JobOptions{Seed: seed}})
		req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Authorization", "Bearer "+key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	r1 := post("k-small", 1)
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", r1.StatusCode)
	}
	r2 := post("k-small", 2)
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: %d, want 429", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Unaffected tenant.
	r3 := post("k-big", 3)
	r3.Body.Close()
	if r3.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant shed too: %d", r3.StatusCode)
	}
}

// TestBatchAPI: one POST fans into N children, the roll-up tracks
// them, and the aggregate SSE stream closes with a final batch event
// once every child is terminal.
func TestBatchAPI(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	body, _ := json.Marshal(batchRequest{Jobs: []batchItem{
		{Deck: testDeck, Options: JobOptions{Seed: 1, MaxMoves: 4000, ProgressEvery: 200}},
		{Deck: testDeck, Options: JobOptions{Seed: 2, MaxMoves: 4000, ProgressEvery: 200}},
	}})
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var bs BatchStatus
	json.NewDecoder(resp.Body).Decode(&bs)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit: %d", resp.StatusCode)
	}
	if len(bs.Jobs) != 2 || bs.ID == "" {
		t.Fatalf("batch status %+v", bs)
	}

	// Aggregate SSE until the final batch roll-up.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/batches/"+bs.ID+"/events", nil)
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	sawJobs := map[string]bool{}
	var final BatchStatus
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	deadline := time.After(120 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var eventName string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				eventName = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data := strings.TrimPrefix(line, "data: ")
				if eventName == "batch" {
					json.Unmarshal([]byte(data), &final)
					return
				}
				var bev struct {
					Job string `json:"job"`
				}
				json.Unmarshal([]byte(data), &bev)
				if bev.Job != "" {
					sawJobs[bev.Job] = true
				}
			}
		}
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("batch SSE never delivered the final roll-up")
	}
	if !final.Done || final.Counts[StateDone] != 2 {
		t.Fatalf("final roll-up %+v", final)
	}
	if len(sawJobs) != 2 {
		t.Fatalf("aggregate stream covered %d jobs, want 2", len(sawJobs))
	}

	// GET roll-up agrees.
	resp2, err := http.Get(ts.URL + "/v1/batches/" + bs.ID)
	if err != nil {
		t.Fatal(err)
	}
	var after BatchStatus
	json.NewDecoder(resp2.Body).Decode(&after)
	resp2.Body.Close()
	if !after.Done || after.Counts[StateDone] != 2 {
		t.Fatalf("roll-up %+v", after)
	}

	// A bad deck rejects the whole batch with no children created.
	before := len(m.Jobs())
	bad, _ := json.Marshal(batchRequest{Jobs: []batchItem{
		{Deck: testDeck, Options: JobOptions{Seed: 9}},
		{Deck: ".module broken ("},
	}})
	resp3, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch: %d, want 400", resp3.StatusCode)
	}
	if got := len(m.Jobs()); got != before {
		t.Fatalf("bad batch leaked %d child jobs", got-before)
	}
}

// TestTenantLogAttr: every job-scoped log line carries the tenant.
func TestTenantLogAttr(t *testing.T) {
	logBuf := &lockedBuffer{}
	logger := slog.New(slog.NewTextHandler(logBuf, nil))

	auth := testAuth(t, twoTenantKeys)
	m, err := New(Options{ExternalExec: true, Auth: auth, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Shutdown(ctx)
	}()
	if _, err := m.SubmitAs(testDeck, JobOptions{Seed: 1}, "", "heavy"); err != nil {
		t.Fatal(err)
	}
	if out := logBuf.String(); !strings.Contains(out, "tenant=heavy") {
		t.Fatalf("job log line missing tenant attr:\n%s", out)
	}
}
