package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"astrx/internal/durable"
)

// lockedBuffer is a mutex-guarded bytes.Buffer: a slog sink that late
// goroutines may still write to while the test reads it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRestartResume is the daemon-death drill from the issue: start a
// manager with a state directory, submit a job, watch at least three
// progress events arrive over SSE, kill the daemon mid-anneal (graceful
// shutdown — the annealer checkpoints at the exact cancellation move),
// start a fresh manager over the same state directory, and fetch the
// completed result, whose verified specs must meet the deck's good
// thresholds.
func TestRestartResume(t *testing.T) {
	stateDir := t.TempDir()

	// ---- first incarnation ----
	// Capture structured log output so the test can assert on the
	// recovery lines of the second incarnation.
	logBuf := &lockedBuffer{}
	logger := slog.New(slog.NewTextHandler(logBuf, nil))
	m1, err := New(Options{
		StateDir:        stateDir,
		Workers:         1,
		CheckpointEvery: 200,
		ProgressEvery:   100,
		Logger:          logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(m1.Handler())

	id := submitJSON(t, ts1, testDeck, JobOptions{Seed: 1, MaxMoves: 8000, Runs: 1, ProgressEvery: 100})

	// Stream events until we have seen >= 3 progress samples, proving
	// the job is genuinely mid-anneal.
	sseCtx, sseCancel := context.WithTimeout(context.Background(), time.Minute)
	req, _ := http.NewRequestWithContext(sseCtx, "GET", ts1.URL+"/v1/jobs/"+id+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	progress := 0
	dec := newSSEDecoder(resp.Body)
	for progress < 3 {
		ev, err := dec.next()
		if err != nil {
			t.Fatalf("sse: %v (saw %d progress events)", err, progress)
		}
		if ev.Type == "progress" {
			progress++
		}
		if ev.Type == "state" && ev.State.terminal() {
			t.Fatalf("job finished before the kill (state %s) — raise MaxMoves", ev.State)
		}
	}
	resp.Body.Close()
	sseCancel()

	// ---- kill the daemon mid-anneal ----
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer shutCancel()
	if err := m1.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// The job must be parked on disk as queued, with a checkpoint.
	rec := readRecord(t, stateDir, id)
	if rec.State != StateQueued {
		t.Fatalf("persisted state after shutdown: %s, want queued", rec.State)
	}
	if _, err := os.Stat(stateDir + "/job-" + id + ".ckpt"); err != nil {
		t.Fatalf("no checkpoint after shutdown: %v", err)
	}

	// ---- second incarnation over the same state dir ----
	m2, err := New(Options{
		StateDir:        stateDir,
		Workers:         1,
		CheckpointEvery: 200,
		ProgressEvery:   100,
		Logger:          logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(m2.Handler())
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m2.Shutdown(ctx)
	}()

	j := m2.Get(id)
	if j == nil {
		t.Fatal("job not recovered by the second incarnation")
	}

	// It must RESUME from the checkpoint, not restart: the recovery log
	// announces the resume move, tagged with the job ID.
	if out := logBuf.String(); !strings.Contains(out, "will resume from move") {
		t.Error("second incarnation did not resume from the checkpoint")
	} else if !strings.Contains(out, "job="+id) {
		t.Errorf("recovery log lines are not tagged with job=%s", id)
	}

	// Wait for completion and fetch the result over HTTP.
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) && !j.State().terminal() {
		time.Sleep(20 * time.Millisecond)
	}
	if got := j.State(); got != StateDone {
		t.Fatalf("resumed job ended %s, want done", got)
	}

	hr, err := http.Get(ts2.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", hr.StatusCode)
	}
	var res JobResult
	if err := json.NewDecoder(hr.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.State != StateDone {
		t.Fatalf("result state %s", res.State)
	}
	if res.Verify == nil {
		t.Fatalf("no verification on the resumed result (verify_error: %s)", res.VerifyError)
	}
	for _, s := range res.Verify.Specs {
		if !s.Objective && !s.Met {
			t.Errorf("resumed result misses spec %s: simulated %g (good=%g bad=%g)",
				s.Name, s.Simulated, s.Good, s.Bad)
		}
	}

	// Terminal job cleans up its checkpoint.
	if _, err := os.Stat(stateDir + "/job-" + id + ".ckpt"); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after completion (stat err: %v)", err)
	}
}

// TestRecoverTerminalHistory: finished jobs survive a restart as
// servable history.
func TestRecoverTerminalHistory(t *testing.T) {
	stateDir := t.TempDir()

	m1 := newTestManager(t, Options{StateDir: stateDir})
	ts1 := httptest.NewServer(m1.Handler())
	id := submitJSON(t, ts1, testDeck, JobOptions{Seed: 1, MaxMoves: 4000})
	j := m1.Get(id)
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) && !j.State().terminal() {
		time.Sleep(20 * time.Millisecond)
	}
	if j.State() != StateDone {
		t.Fatalf("job ended %s", j.State())
	}
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	m1.Shutdown(ctx)

	m2 := newTestManager(t, Options{StateDir: stateDir})
	ts2 := httptest.NewServer(m2.Handler())
	defer ts2.Close()

	resp, err := http.Get(ts2.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("historical result: status %d", resp.StatusCode)
	}
	var res JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.State != StateDone || res.Result == nil {
		t.Fatalf("historical result incomplete: %+v", res)
	}
}

// sseDecoder yields decoded events from an SSE body one at a time, for
// tests that must stop reading mid-stream.
type sseDecoder struct {
	sc *bufio.Scanner
}

func newSSEDecoder(r io.Reader) *sseDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &sseDecoder{sc: sc}
}

func (d *sseDecoder) next() (Event, error) {
	for d.sc.Scan() {
		line := d.sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			return Event{}, err
		}
		return ev, nil
	}
	if err := d.sc.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.EOF
}

// readRecord loads a persisted job record from the state directory,
// verifying its durable envelope.
func readRecord(t *testing.T, dir, id string) *jobRecord {
	t.Helper()
	payload, err := durable.ReadSealed(nil, dir+"/job-"+id+".json")
	if err != nil {
		t.Fatal(err)
	}
	var rec jobRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		t.Fatal(err)
	}
	return &rec
}

// TestRequeueFIFOAcrossRestart checks the graceful-drain ordering
// contract: jobs queued at shutdown come back after a restart in their
// original submission order, and a lease released back by a draining
// external worker re-enters at the queue head (it was claimed first, so
// FIFO is preserved, not reset).
func TestRequeueFIFOAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	m1, err := New(Options{StateDir: dir, ExternalExec: true, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := m1.Submit(testDeck, JobOptions{Seed: int64(i + 1), MaxMoves: 1000})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	m2, err := New(Options{StateDir: dir, ExternalExec: true, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m2.Shutdown(ctx)
	})
	if d := m2.QueueDepth(); d != 3 {
		t.Fatalf("recovered queue depth %d, want 3", d)
	}

	// Claim the head, hand it back (graceful worker drain): it must be
	// claimable again before the jobs behind it.
	head := m2.ClaimQueued()
	if head == nil || head.ID != ids[0] {
		t.Fatalf("first claim = %v, want %s", head, ids[0])
	}
	m2.ReleaseExternal(head)

	var got []string
	for i := 0; i < 3; i++ {
		j := m2.ClaimQueued()
		if j == nil {
			t.Fatalf("queue empty after %d claims, want 3", i)
		}
		got = append(got, j.ID)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("claim order %v, want submission order %v", got, ids)
		}
	}
	if j := m2.ClaimQueued(); j != nil {
		t.Fatalf("extra job %s in queue", j.ID)
	}
}
