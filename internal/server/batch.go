package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"astrx/internal/netlist"
)

// This file is the batch API: POST /v1/batches accepts N decks in one
// request and fans them into ordinary child jobs — same validation,
// same tenant quota and fair-share lane, same durability; the batch
// itself is a serving-layer grouping (roll-up status + one aggregate
// SSE stream) and lives in memory. After a daemon restart the children
// recover like any other job; only the grouping is forgotten.

// Batch groups the child jobs of one POST /v1/batches.
type Batch struct {
	ID      string
	Tenant  string
	Created time.Time
	jobs    []*Job
}

// batchItem is one deck in a batch submission.
type batchItem struct {
	Deck    string     `json:"deck"`
	Options JobOptions `json:"options"`
}

// batchRequest is the JSON body of POST /v1/batches.
type batchRequest struct {
	Jobs []batchItem `json:"jobs"`
}

// BatchStatus is the wire form of a batch roll-up.
type BatchStatus struct {
	ID      string    `json:"id"`
	Tenant  string    `json:"tenant,omitempty"`
	Created time.Time `json:"created"`
	// Counts breaks the children down by lifecycle state.
	Counts map[State]int `json:"counts"`
	// Done is true once every child is terminal.
	Done bool `json:"done"`
	// CacheHits counts children served instantly from the result cache.
	CacheHits int       `json:"cache_hits"`
	Jobs      []*Status `json:"jobs"`
}

// maxBatchJobs bounds one batch; bigger sweeps should be split.
const maxBatchJobs = 256

// maxBatchBytes bounds a batch request body.
const maxBatchBytes = 32 << 20

// readJSONBody decodes a bounded JSON request body into v, writing the
// 4xx itself on failure.
func readJSONBody(w http.ResponseWriter, r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBatchBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return err
	}
	if len(body) > maxBatchBytes {
		err := fmt.Errorf("body larger than %d bytes", maxBatchBytes)
		writeErr(w, http.StatusRequestEntityTooLarge, "%v", err)
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeErr(w, http.StatusBadRequest, "parse request: %v", err)
		return err
	}
	return nil
}

// SubmitBatch validates every deck upfront and submits them as child
// jobs, all-or-nothing: a deck error rejects the whole batch before
// any child exists, and a mid-batch admission failure (quota, queue
// full, draining) rolls already-created children back by cancelling
// them. On success every child is queued (or already done via the
// result cache) under the tenant's lane.
func (m *Manager) SubmitBatch(items []batchItem, requestID, tenant string) (*Batch, error) {
	if len(items) == 0 {
		return nil, &DeckError{Err: fmt.Errorf("server: batch has no jobs")}
	}
	if len(items) > maxBatchJobs {
		return nil, &DeckError{Err: fmt.Errorf("server: batch of %d jobs exceeds the limit %d",
			len(items), maxBatchJobs)}
	}
	// Upfront validation — the same parse/validate path SubmitAs runs —
	// so a bad deck names its index and rejects the batch before any
	// child job exists.
	for i, it := range items {
		d, err := netlist.Parse(it.Deck)
		if err == nil {
			err = d.Validate()
		}
		if err != nil {
			return nil, &DeckError{Err: fmt.Errorf("server: batch job %d: %w", i, err)}
		}
	}

	b := &Batch{ID: newID(), Tenant: tenant, Created: time.Now()}
	for i, it := range items {
		j, err := m.SubmitAs(it.Deck, it.Options, requestID, tenant)
		if err != nil {
			// Roll back: cancel the children created so far (still
			// queued or instant cache hits; cancelling a terminal child
			// is a no-op error we ignore).
			for _, prev := range b.jobs {
				m.Cancel(prev.ID)
			}
			return nil, fmt.Errorf("server: batch job %d: %w", i, err)
		}
		b.jobs = append(b.jobs, j)
	}

	m.mu.Lock()
	m.batches[b.ID] = b
	m.mu.Unlock()
	m.log.Info("batch queued", "batch", b.ID, "tenant", tenant, "jobs", len(b.jobs))
	return b, nil
}

// GetBatch returns a batch by ID, or nil.
func (m *Manager) GetBatch(id string) *Batch {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.batches[id]
}

// Status rolls the batch's children up into one snapshot.
func (b *Batch) Status() *BatchStatus {
	bs := &BatchStatus{
		ID: b.ID, Tenant: b.Tenant, Created: b.Created,
		Counts: make(map[State]int), Done: true,
		Jobs: make([]*Status, 0, len(b.jobs)),
	}
	for _, j := range b.jobs {
		st := j.Status()
		bs.Jobs = append(bs.Jobs, st)
		bs.Counts[st.State]++
		if !st.State.terminal() {
			bs.Done = false
		}
		if st.CacheHit {
			bs.CacheHits++
		}
	}
	return bs
}

func (m *Manager) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := readJSONBody(w, r, &req); err != nil {
		return // readJSONBody wrote the error
	}
	b, err := m.SubmitBatch(req.Jobs, r.Header.Get("X-Request-Id"), tenantFrom(r))
	if err != nil {
		m.writeSubmitErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/batches/"+b.ID)
	writeJSON(w, http.StatusAccepted, b.Status())
}

// batchOr404 resolves the {id} path value, tenant-scoped like jobOr404.
func (m *Manager) batchOr404(w http.ResponseWriter, r *http.Request) *Batch {
	id := r.PathValue("id")
	b := m.GetBatch(id)
	if b != nil && !m.auth.OpenMode() && b.Tenant != tenantFrom(r) {
		b = nil
	}
	if b == nil {
		writeErr(w, http.StatusNotFound, "no batch %q", id)
	}
	return b
}

func (m *Manager) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	if b := m.batchOr404(w, r); b != nil {
		writeJSON(w, http.StatusOK, b.Status())
	}
}

// batchEvent is one aggregate-stream entry: a child job's event tagged
// with the child's ID.
type batchEvent struct {
	Job string `json:"job"`
	Event
}

// handleBatchEvents streams every child job's events on one SSE
// connection, each tagged with its job ID, and closes with a final
// "batch" roll-up event once all children are terminal.
func (m *Manager) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	b := m.batchOr404(w, r)
	if b == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	ctx := r.Context()
	agg := make(chan batchEvent, 256)
	// One forwarder per child: replay history, then live events, until
	// the child turns terminal or the client goes away.
	for _, j := range b.jobs {
		replay, ch, cancel := j.Subscribe()
		go func(id string, replay []Event, ch chan Event, cancel func()) {
			defer cancel()
			forward := func(ev Event) bool {
				select {
				case agg <- batchEvent{Job: id, Event: ev}:
				case <-ctx.Done():
					return false
				}
				return !(ev.Type == "state" && ev.State.terminal())
			}
			for _, ev := range replay {
				if !forward(ev) {
					return
				}
			}
			for {
				select {
				case <-ctx.Done():
					return
				case ev := <-ch:
					if !forward(ev) {
						return
					}
				}
			}
		}(j.ID, replay, ch, cancel)
	}

	remaining := len(b.jobs)
	for remaining > 0 {
		select {
		case <-ctx.Done():
			return
		case ev := <-agg:
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
			if ev.Type == "state" && ev.State.terminal() {
				remaining--
			}
		}
	}
	// Final roll-up: every child terminal.
	if data, err := json.Marshal(b.Status()); err == nil {
		fmt.Fprintf(w, "event: batch\ndata: %s\n\n", data)
		fl.Flush()
	}
}
