package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"astrx/internal/durable"
	"astrx/internal/faults"
	"astrx/internal/netlist"
	"astrx/internal/oblx"
	"astrx/internal/retry"
)

// metricsText fetches /debug/metrics as one string.
func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// TestChaosTornWritesNeverLoseJobs is the issue's headline drill: run the
// daemon's whole persistence layer over a filesystem that tears renames
// apart and silently drops the tail of writes, kill the daemon with jobs
// both finished and mid-anneal, and restart over the same directory with
// a healthy disk. Every submitted job must then be accounted for exactly
// once — recovered by the new daemon or quarantined with a recorded
// reason — and none may be invented, lost, or double-completed.
func TestChaosTornWritesNeverLoseJobs(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(1234, faults.Rates{})
	ffs := inj.FS(durable.OS, faults.FSRates{ShortWrite: 0.35, RenameTorn: 0.35})

	m1, err := New(Options{StateDir: dir, Workers: 2, ProgressEvery: 200, FS: ffs, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}

	// Four quick jobs that finish under the first daemon, two long ones
	// it is killed in the middle of.
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := m1.Submit(testDeck, JobOptions{Seed: int64(i + 1), MaxMoves: 3000})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for i := 0; i < 2; i++ {
		j, err := m1.Submit(testDeck, JobOptions{Seed: int64(10 + i), MaxMoves: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for _, id := range ids[:4] {
		for time.Now().Before(deadline) && !m1.Get(id).State().terminal() {
			time.Sleep(20 * time.Millisecond)
		}
		if !m1.Get(id).State().terminal() {
			t.Fatalf("quick job %s never finished under injected faults", id)
		}
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	if n := inj.Total(); n == 0 {
		t.Fatal("fault injector never fired; the test exercised nothing")
	}
	t.Logf("injected %d filesystem faults (short-write=%d torn-rename=%d)",
		inj.Total(), inj.Count(faults.FSShortWrite), inj.Count(faults.FSRenameTorn))

	// Second incarnation over the same directory, healthy disk.
	m2 := newTestManager(t, Options{StateDir: dir, Workers: 2})

	submitted := make(map[string]bool, len(ids))
	for _, id := range ids {
		submitted[id] = true
		recovered := m2.Get(id) != nil
		qpath := filepath.Join(dir, quarantineDir, "job-"+id+".json")
		_, qerr := os.Stat(qpath)
		quarantined := qerr == nil
		if recovered == quarantined {
			t.Errorf("job %s: recovered=%v quarantined=%v — want exactly one", id, recovered, quarantined)
		}
		if quarantined {
			reason, err := os.ReadFile(qpath + ".reason")
			if err != nil || len(bytes.TrimSpace(reason)) == 0 {
				t.Errorf("job %s quarantined without a reason sidecar (err %v)", id, err)
			}
		}
		// A recovered terminal job must still serve its result, not re-run.
		if j := m2.Get(id); j != nil && j.State() == StateDone && j.Result() == nil {
			t.Errorf("job %s recovered as done but lost its result", id)
		}
	}
	for _, j := range m2.Jobs() {
		if !submitted[j.ID] {
			t.Errorf("recovery invented job %s", j.ID)
		}
	}
}

// TestChaosCorruptCheckpointRestartsFromScratch: a checkpoint whose bytes
// rotted on disk is quarantined by the startup fsck and its job restarts
// from move zero — a lost prefix of moves, never a lost job and never a
// resume from garbage.
func TestChaosCorruptCheckpointRestartsFromScratch(t *testing.T) {
	dir := t.TempDir()
	m1, err := New(Options{StateDir: dir, Workers: 1, CheckpointEvery: 200, ProgressEvery: 100, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m1.Submit(testDeck, JobOptions{Seed: 1, MaxMoves: 8_000_000, ProgressEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	id := j1.ID

	ckPath := filepath.Join(dir, "job-"+id+".ckpt")
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(ckPath); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := os.Stat(ckPath); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}

	// Rot the checkpoint: a valid-looking envelope header over garbage.
	if err := os.WriteFile(ckPath, []byte("%OBLX-ENV1 9999 deadbeef\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Options{StateDir: dir, Workers: 1})
	j2 := m2.Get(id)
	if j2 == nil {
		t.Fatal("job lost with its corrupt checkpoint")
	}
	j2.mu.Lock()
	resume := j2.resume
	j2.mu.Unlock()
	if resume != nil {
		t.Error("corrupt checkpoint was accepted for resume")
	}
	qck := filepath.Join(dir, quarantineDir, "job-"+id+".ckpt")
	if _, err := os.Stat(qck); err != nil {
		t.Errorf("corrupt checkpoint not quarantined: %v", err)
	}
	if _, err := os.Stat(qck + ".reason"); err != nil {
		t.Errorf("quarantined checkpoint has no reason sidecar: %v", err)
	}
	m2.Cancel(id)
}

// TestStallSupervisionRequeuesThenPoisons drives the watchdog end to end
// with a synthesis run that ticks once and then hangs: the job must be
// killed, requeued with backoff, killed again, and finally poisoned with
// its full failure history attached.
func TestStallSupervisionRequeuesThenPoisons(t *testing.T) {
	orig := synthesize
	defer func() { synthesize = orig }()
	synthesize = func(ctx context.Context, deck *netlist.Deck, opt oblx.Options) (*oblx.Result, error) {
		if opt.Progress != nil {
			opt.Progress(oblx.ProgressEvent{Move: 1, MaxMoves: opt.MaxMoves})
		}
		<-ctx.Done() // stall: no further progress until the watchdog kills us
		return nil, ctx.Err()
	}

	m := newTestManager(t, Options{
		Workers:      1,
		StallTimeout: 60 * time.Millisecond,
		Retry:        retry.Policy{Base: 10 * time.Millisecond, Max: 20 * time.Millisecond, Multiplier: 2, MaxAttempts: 2},
	})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	j, err := m.Submit(testDeck, JobOptions{Seed: 1, MaxMoves: 1000})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StatePoisoned, 30*time.Second)

	res := j.Result()
	if res == nil || res.State != StatePoisoned {
		t.Fatalf("poisoned job result: %+v", res)
	}
	if !strings.Contains(res.Error, "poisoned after 2 attempts") {
		t.Errorf("poison error %q does not report the attempt count", res.Error)
	}
	if len(res.History) != 2 {
		t.Fatalf("failure history has %d entries, want 2: %+v", len(res.History), res.History)
	}
	for i, f := range res.History {
		if f.Attempt != i+1 || !strings.Contains(f.Error, "stalled") || f.Time.IsZero() {
			t.Errorf("history[%d] = %+v", i, f)
		}
	}

	// The requeue between attempts was announced on the event stream with
	// its cause.
	replay, _, cancel := j.Subscribe()
	cancel()
	requeued := false
	for _, ev := range replay {
		if ev.Type == "state" && ev.State == StateQueued && strings.Contains(ev.Error, "stalled") {
			requeued = true
		}
	}
	if !requeued {
		t.Error("no queued event carrying the stall cause")
	}

	text := metricsText(t, ts)
	for _, want := range []string{
		"oblxd_stalls_total 2",
		"oblxd_job_retries_total 1",
		`oblxd_jobs_finished_total{state="poisoned"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJobDeadlineFailsTerminally: a job that exceeds its wall-clock
// deadline fails (keeping the best-so-far design) instead of being
// recorded as a user cancellation or retried.
func TestJobDeadlineFailsTerminally(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, JobDeadline: 300 * time.Millisecond})
	j, err := m.Submit(testDeck, JobOptions{Seed: 1, MaxMoves: 500_000_000, ProgressEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed, 30*time.Second)
	res := j.Result()
	if res == nil || !strings.Contains(res.Error, "deadline") {
		t.Fatalf("deadline result: %+v", res)
	}
	if res.Result == nil {
		t.Error("deadline failure dropped the best-so-far design")
	}
}

// TestQueueFullSheds429: with a bounded queue, excess submissions are
// shed with 429, a Retry-After hint, and a correlatable request ID.
func TestQueueFullSheds429(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, MaxQueue: 1})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	long := submitJSON(t, ts, testDeck, JobOptions{Seed: 1, MaxMoves: 5_000_000})
	waitState(t, m.Get(long), StateRunning, time.Minute)
	queued := submitJSON(t, ts, testDeck, JobOptions{Seed: 2, MaxMoves: 4000})

	body, _ := json.Marshal(submitRequest{Deck: testDeck})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Errorf("Retry-After = %q, want \"5\"", ra)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("shed response has no X-Request-Id")
	}
	var e apiError
	json.NewDecoder(resp.Body).Decode(&e)
	if !strings.Contains(e.Error, "queue full") {
		t.Errorf("shed error %q", e.Error)
	}
	if !strings.Contains(metricsText(t, ts), "oblxd_shed_total 1") {
		t.Error("oblxd_shed_total not incremented")
	}

	m.Cancel(queued)
	m.Cancel(long)
}

// flakyFS makes the state directory unwritable on demand: CreateTemp —
// the first step of every atomic write — fails while the switch is on.
type flakyFS struct {
	durable.FS
	fail atomic.Bool
}

func (f *flakyFS) CreateTemp(dir, pattern string) (durable.File, error) {
	if f.fail.Load() {
		return nil, errors.New("injected: state dir unwritable")
	}
	return f.FS.CreateTemp(dir, pattern)
}

// TestDegradedModeFlipsAndHeals: persist failures flip the daemon into
// degraded (in-memory) mode — visible on /healthz and the oblxd_degraded
// gauge — and the next successful write heals it.
func TestDegradedModeFlipsAndHeals(t *testing.T) {
	ffs := &flakyFS{FS: durable.OS}
	m := newTestManager(t, Options{Workers: 1, StateDir: t.TempDir(), FS: ffs})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	if h := m.Health(); h.Status != "ok" || !h.StateDirWritable {
		t.Fatalf("initial health: %+v", h)
	}

	// Occupy the sole worker so later submissions stay queued and the
	// only persists are the ones this test provokes.
	long := submitJSON(t, ts, testDeck, JobOptions{Seed: 1, MaxMoves: 5_000_000})
	waitState(t, m.Get(long), StateRunning, time.Minute)

	ffs.fail.Store(true)
	if _, err := m.Submit(testDeck, JobOptions{Seed: 2, MaxMoves: 4000}); err != nil {
		t.Fatal(err) // persist failure degrades, it does not reject the job
	}
	if h := m.Health(); h.Status != "degraded" || h.StateDirWritable {
		t.Fatalf("health after failed persist: %+v", h)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "degraded" {
		t.Errorf("/healthz degraded: status %d body %+v (want 200/degraded)", resp.StatusCode, h)
	}
	text := metricsText(t, ts)
	if !strings.Contains(text, "oblxd_degraded 1") {
		t.Error("oblxd_degraded gauge not set")
	}
	if !strings.Contains(text, "oblxd_persist_errors_total") {
		t.Error("oblxd_persist_errors_total missing")
	}

	ffs.fail.Store(false)
	if _, err := m.Submit(testDeck, JobOptions{Seed: 3, MaxMoves: 4000}); err != nil {
		t.Fatal(err)
	}
	if h := m.Health(); h.Status != "ok" || !h.StateDirWritable {
		t.Errorf("health after recovery: %+v", h)
	}

	m.Cancel(long)
}

// TestHealthzJSONBody: the health endpoint reports machine-readable
// detail, and every API response — including errors — carries the
// correlation headers.
func TestHealthzJSONBody(t *testing.T) {
	m := newTestManager(t, Options{Workers: 3, StateDir: t.TempDir()})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("healthz response has no X-Request-Id")
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 3 || !h.StateDirWritable ||
		h.QueueDepth != 0 || h.WorkersBusy != 0 || h.UptimeSeconds < 0 {
		t.Errorf("healthz body: %+v", h)
	}

	// A client-supplied request ID is honored and echoed.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/nosuchjob", nil)
	req.Header.Set("X-Request-Id", "req-test-42")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Request-Id"); got != "req-test-42" {
		t.Errorf("X-Request-Id = %q, want the client's req-test-42", got)
	}
	if ra := resp2.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("404 Retry-After = %q, want \"1\"", ra)
	}
}

// TestRetryAfterEstimateTracksJobDurations checks the 429 Retry-After
// hint is a real backlog estimate — average job duration × queue depth
// ÷ workers — not a constant, while staying at the 5s default before
// any job has finished.
func TestRetryAfterEstimateTracksJobDurations(t *testing.T) {
	m := newTestManager(t, Options{ExternalExec: true})

	// Empty queue, no history: clamped to the 1s floor.
	if d := m.retryAfterEstimate(); d != time.Second {
		t.Fatalf("empty-queue estimate = %s, want 1s floor", d)
	}

	for i := 0; i < 2; i++ {
		if _, err := m.Submit(testDeck, JobOptions{Seed: int64(i + 1), MaxMoves: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	// No finished jobs yet: the 5s default average applies.
	// depth 2 × 5s ÷ 2 workers = 5s — the value the shedding test pins.
	if d := m.retryAfterEstimate(); d != 5*time.Second {
		t.Fatalf("no-history estimate = %s, want 5s", d)
	}

	// With real durations the estimate follows the observed average:
	// avg 45s × depth 2 ÷ 2 workers = 45s.
	m.mJobSecs.Observe(30)
	m.mJobSecs.Observe(60)
	if d := m.retryAfterEstimate(); d != 45*time.Second {
		t.Fatalf("estimate = %s, want 45s from observed durations", d)
	}
}
