package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"astrx/internal/netlist"
	"astrx/internal/oblx"
	"astrx/internal/trace"
)

// submitTraced posts a deck with a W3C traceparent header and returns
// the job ID.
func submitTraced(t *testing.T, ts *httptest.Server, deck string, opt JobOptions, traceparent string) string {
	t.Helper()
	body, _ := json.Marshal(submitRequest{Deck: deck, Options: opt})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", traceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// findSpans flattens a span tree into name → nodes.
func findSpans(nodes []*trace.Node, into map[string][]*trace.Node) {
	for _, n := range nodes {
		into[n.Name] = append(into[n.Name], n)
		findSpans(n.Children, into)
	}
}

// TestTraceEndpointLifecycle is the single-daemon acceptance drill for
// the tracing tentpole: a job submitted with a client traceparent joins
// the client's trace, runs a real anneal, and serves one span tree —
// job root parented to the client span, with submit, queue-wait, and
// anneal children — live while the daemon is up and from the durable
// snapshot after a restart.
func TestTraceEndpointLifecycle(t *testing.T) {
	const (
		clientTID  = "4bf92f3577b34da6a3ce929d0e0e4736"
		clientSpan = "00f067aa0ba902b7"
	)
	dir := t.TempDir()
	m1, err := New(Options{StateDir: dir, Workers: 1, ProgressEvery: 200, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(m1.Handler())

	id := submitTraced(t, ts1, testDeck, JobOptions{Seed: 1, MaxMoves: 4000},
		"00-"+clientTID+"-"+clientSpan+"-01")
	j := m1.Get(id)
	if j == nil {
		t.Fatal("job not found after submit")
	}
	waitState(t, j, StateDone, 60*time.Second)

	// The terminal state publishes just before the trace closes; poll
	// briefly until the root span has been ended.
	var live TraceSummary
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := getJSON(t, ts1.URL+"/v1/jobs/"+id+"/trace", &live); code != http.StatusOK {
			t.Fatalf("live trace: status %d", code)
		}
		if len(live.Tree) == 1 && live.Tree[0].Status == "ok" || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if live.Source != "live" || live.TraceID != clientTID {
		t.Fatalf("live trace: source %q trace ID %q, want live/%s", live.Source, live.TraceID, clientTID)
	}
	checkTree := func(sum TraceSummary) {
		t.Helper()
		if len(sum.Tree) != 1 {
			t.Fatalf("trace has %d roots, want 1: %+v", len(sum.Tree), sum.Tree)
		}
		root := sum.Tree[0]
		if root.Name != "job" || root.SpanID != trace.RootSpanID(clientTID) {
			t.Fatalf("root span %q id %q, want job/%s", root.Name, root.SpanID, trace.RootSpanID(clientTID))
		}
		if root.Parent != clientSpan {
			t.Errorf("root parent %q, want the client span %s", root.Parent, clientSpan)
		}
		if root.Attrs["job"] != sum.ID || root.Attrs["state"] != "done" || root.Status != "ok" {
			t.Errorf("root attrs/status: %+v %q", root.Attrs, root.Status)
		}
		byName := map[string][]*trace.Node{}
		findSpans(sum.Tree, byName)
		for _, name := range []string{"submit", "queue-wait", "anneal"} {
			if len(byName[name]) == 0 {
				t.Errorf("no %q span in tree (have %d spans)", name, sum.Spans)
			}
		}
		if ann := byName["anneal"]; len(ann) > 0 {
			if ann[0].Parent != root.SpanID {
				t.Errorf("anneal parented to %q, want the job root", ann[0].Parent)
			}
			if ann[0].Attrs["moves"] == "" || ann[0].Attrs["evals"] == "" {
				t.Errorf("anneal span attrs missing moves/evals: %+v", ann[0].Attrs)
			}
		}
	}
	checkTree(live)

	// The queue-wait latency histogram saw the submit→claim hop.
	mResp, err := http.Get(ts1.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mBody := new(bytes.Buffer)
	mBody.ReadFrom(mResp.Body)
	mResp.Body.Close()
	for _, want := range []string{"oblxd_queue_wait_seconds", "oblxd_span_duration_seconds"} {
		if !strings.Contains(mBody.String(), want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}

	// The job record persisted the propagation context for recovery.
	if rec := readRecord(t, dir, id); rec.Traceparent != "00-"+clientTID+"-"+trace.RootSpanID(clientTID)+"-01" {
		t.Errorf("persisted traceparent = %q", rec.Traceparent)
	}

	ts1.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}

	// ---- restart: the tree is served from the durable snapshot ----
	m2 := newTestManager(t, Options{StateDir: dir, Workers: 1})
	ts2 := httptest.NewServer(m2.Handler())
	defer ts2.Close()

	var snap TraceSummary
	if code := getJSON(t, ts2.URL+"/v1/jobs/"+id+"/trace", &snap); code != http.StatusOK {
		t.Fatalf("snapshot trace: status %d", code)
	}
	if snap.Source != "snapshot" || snap.TraceID != clientTID || snap.Cause != "done" {
		t.Fatalf("snapshot trace: %+v", snap)
	}
	checkTree(snap)
}

// TestTraceConcurrentSnapshot races live span traffic against trace
// snapshotting: while a real anneal records spans and publishes SSE
// progress, concurrent readers hammer GET .../trace, GET .../telemetry,
// and the SSE stream. Run under -race; the invariant is simply no data
// race and well-formed responses throughout.
func TestTraceConcurrentSnapshot(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, ProgressEvery: 100})
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	id := submitJSON(t, ts, testDeck, JobOptions{Seed: 1, MaxMoves: 30_000, ProgressEvery: 100})
	j := m.Get(id)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sum TraceSummary
				if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/trace", &sum); code != http.StatusOK {
					t.Errorf("trace during run: status %d", code)
					return
				}
				if sum.TraceID == "" || sum.Source != "live" {
					t.Errorf("trace during run: %+v", sum)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			getJSON(t, ts.URL+"/v1/jobs/"+id+"/telemetry", nil)
		}
	}()
	// SSE subscriber rides along until the terminal state event.
	if _, final := readSSE(t, ts, id, 120*time.Second); final != StateDone {
		t.Errorf("final state %s, want done", final)
	}
	close(stop)
	wg.Wait()
	waitState(t, j, StateDone, 10*time.Second)

	var sum TraceSummary
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/trace", &sum); code != http.StatusOK {
		t.Fatalf("final trace: status %d", code)
	}
	if len(sum.Tree) != 1 || sum.Tree[0].Name != "job" || sum.Tree[0].Status != "ok" {
		t.Fatalf("final trace tree: %+v", sum.Tree)
	}
}

// TestTraceLegacyJob409: unknown jobs 404; a recovered terminal job with
// neither a live recorder nor a snapshot on disk (a state dir written
// before the daemon gained tracing) answers 409, matching telemetry.
func TestTraceLegacyJob409(t *testing.T) {
	orig := synthesize
	defer func() { synthesize = orig }()
	synthesize = func(ctx context.Context, deck *netlist.Deck, opt oblx.Options) (*oblx.Result, error) {
		return nil, context.Canceled
	}

	dir := t.TempDir()
	m1, err := New(Options{StateDir: dir, Workers: 1, Logger: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	j, err := m1.Submit(testDeck, JobOptions{Seed: 1, MaxMoves: 1000})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed, 30*time.Second)
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m1.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	// Simulate a pre-tracing state dir: drop the trace artifact.
	if err := os.Remove(dir + "/job-" + j.ID + ".trace"); err != nil {
		t.Fatalf("expected a trace snapshot to exist: %v", err)
	}

	m2 := newTestManager(t, Options{StateDir: dir, Workers: 1})
	ts := httptest.NewServer(m2.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var e apiError
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || !strings.Contains(e.Error, "no trace") {
		t.Errorf("legacy trace: status %d error %q, want 409/no trace", resp.StatusCode, e.Error)
	}

	resp2, err := http.Get(ts.URL + "/v1/jobs/nosuchjob/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", resp2.StatusCode)
	}
}
