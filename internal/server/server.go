// Package server is the synthesis service behind the oblxd daemon: a
// job manager that accepts ASTRX decks, runs them through OBLX on a
// bounded worker pool, streams annealing progress to subscribers, and
// survives restarts by checkpointing in-flight jobs to a state
// directory.
//
// The paper's workflow is batch — "5-10 annealing runs performed
// overnight" — but the cancellation + checkpoint machinery underneath
// (context-scoped runs, resumable annealer snapshots) is exactly what a
// long-lived optimization service needs: jobs are queued, run with a
// context each, checkpoint periodically, and a killed daemon resumes
// queued and running jobs from disk on restart without losing a move.
//
// Lifecycle: Submit validates the deck (parse + Deck.Validate) and
// enqueues; workers pull jobs FIFO and run them; DELETE cancels via the
// job's context; Shutdown stops intake (submissions get ErrDraining →
// HTTP 503), cancels running jobs — which write a final checkpoint at
// the exact cancellation move — and leaves everything on disk in a
// state New can recover.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"sync"
	"time"

	"astrx/internal/astrx"
	"astrx/internal/durable"
	"astrx/internal/metrics"
	"astrx/internal/netlist"
	"astrx/internal/oblx"
	"astrx/internal/rescache"
	"astrx/internal/retry"
	"astrx/internal/telemetry"
	"astrx/internal/tenancy"
	"astrx/internal/trace"
	"astrx/internal/verify"
)

// State is a job lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StatePoisoned marks a job the supervisor gave up on: it stalled (or
	// otherwise failed retryably) on every allowed attempt. Terminal; the
	// failure history rides along in the result.
	StatePoisoned State = "poisoned"
)

// terminal reports whether a state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StatePoisoned
}

// allStates lists every lifecycle state, for the jobs-by-state metric.
var allStates = []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled, StatePoisoned}

// JobFailure is one entry of a supervised job's failure history: what
// went wrong on which attempt. The history is persisted with the job and
// attached to a poisoned job's result.
type JobFailure struct {
	Attempt int       `json:"attempt"`
	Error   string    `json:"error"`
	Time    time.Time `json:"time"`
}

// JobOptions are the per-job synthesis knobs a client may set.
type JobOptions struct {
	Seed     int64 `json:"seed,omitempty"`      // 0 → 1
	MaxMoves int   `json:"max_moves,omitempty"` // 0 → 120 000
	// Runs is the number of independent seeded anneals (best kept).
	// Checkpoint/resume is a single-run feature: jobs with Runs > 1
	// restart from scratch after a daemon kill instead of resuming.
	Runs     int  `json:"runs,omitempty"` // 0 → 1
	NoFreeze bool `json:"no_freeze,omitempty"`
	// Corners selects the worst-case corner set: nil → every corner the
	// deck declares, empty → nominal-only, else named .corner cards.
	// Deliberately not omitempty — nil and [] are different jobs and
	// must survive a persist/reload round trip.
	Corners []string `json:"corners"`
	// ProgressEvery is the move interval between streamed progress
	// events (0 → the manager default).
	ProgressEvery int `json:"progress_every,omitempty"`
}

func (o *JobOptions) defaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxMoves <= 0 {
		o.MaxMoves = 120_000
	}
	if o.Runs <= 0 {
		o.Runs = 1
	}
}

// Event is one entry of a job's event stream: either a state transition
// or an annealing progress sample.
type Event struct {
	Type  string              `json:"type"` // "state" | "progress"
	State State               `json:"state,omitempty"`
	Error string              `json:"error,omitempty"`
	Prog  *oblx.ProgressEvent `json:"progress,omitempty"`
}

// maxBufferedEvents caps the per-job replay buffer; SSE subscribers that
// attach late see at most this many historical events. Progress events
// beyond the cap evict the oldest progress entries (state transitions
// are never evicted).
const maxBufferedEvents = 1024

// VerifySummary is the JSON projection of the reference-simulation
// report attached to a finished job.
type VerifySummary struct {
	Specs          []verify.SpecResult `json:"specs"`
	BiasIterations int                 `json:"bias_iterations"`
	BiasConverged  bool                `json:"bias_converged"`
	MaxKCL         float64             `json:"max_kcl"`
	WorstRelErr    float64             `json:"worst_rel_err"`
	// AllMet reports whether every non-objective spec is met by the
	// simulated (not just predicted) value.
	AllMet bool `json:"all_met"`
}

// JobResult is the wire form of a finished job's outcome.
type JobResult struct {
	ID     string           `json:"id"`
	State  State            `json:"state"`
	Error  string           `json:"error,omitempty"`
	Result *oblx.ResultView `json:"result,omitempty"`
	Verify *VerifySummary   `json:"verify,omitempty"`
	// VerifyError records a reference-simulation failure (e.g. a
	// cancelled job's half-annealed point may not bias-converge); the
	// synthesis result above is still valid best-so-far data.
	VerifyError string `json:"verify_error,omitempty"`
	// History is the supervision failure history (poisoned jobs).
	History []JobFailure `json:"history,omitempty"`
}

// Job is one synthesis job. All mutable fields are guarded by mu.
type Job struct {
	ID      string
	Deck    string
	Options JobOptions
	Created time.Time
	// Tenant names the submitting principal (tenancy.DefaultTenantName
	// in open mode). Immutable after creation.
	Tenant string
	// DeckHash is the canonical content hash of the deck (the same value
	// `astrx -hash` prints) — whitespace- and comment-insensitive, so
	// identical logical decks share it. Immutable after creation.
	DeckHash string

	mu       sync.Mutex
	state    State
	err      string
	started  time.Time
	finished time.Time
	bestCost float64 // NaN until the first progress event
	lastProg *oblx.ProgressEvent
	events   []Event
	subs     map[chan Event]struct{}
	result   *JobResult

	// cancel aborts the running synthesis; nil unless running.
	cancel context.CancelFunc
	// userCancelled distinguishes DELETE (terminal) from a shutdown
	// drain (job stays resumable).
	userCancelled bool
	// stallKilled is set by the watchdog just before it cancels a stalled
	// run, so finishJob routes the outcome to the retry path instead of
	// recording a user cancellation.
	stallKilled bool
	// lastTick is the time of the last ProgressFunc tick (or the run
	// start); the watchdog compares it against the stall timeout.
	lastTick time.Time
	// attempts counts supervised execution attempts; history records what
	// each failed one died of.
	attempts int
	history  []JobFailure
	// requestID is the X-Request-Id (or traceparent trace ID) of the
	// submitting HTTP request, echoed in this job's log lines for
	// correlation. Persisted with the record, so the correlation
	// survives a daemon restart.
	requestID string
	// trace is the job's distributed-trace recorder, created before the
	// job is published (submit or recovery) and immutable afterwards —
	// unlocked reads are safe, like requestID. Nil only for terminal
	// jobs recovered from records that predate tracing.
	trace *trace.Recorder
	// traceRemote is the client span the root span is remotely parented
	// to (from the submit traceparent header; "" when none). Immutable;
	// persisted so a restart re-opens the root with the same link.
	traceRemote string
	// resume holds the checkpoint to continue from, set during recovery.
	resume *oblx.Checkpoint
	// extEvals/extTime track per-run eval watermarks for progress events
	// fed by external fleet workers (nil for locally-executed jobs).
	extEvals map[int]int
	extTime  map[int]time.Time
	// telem holds the job's flight recorder + stage timer, created on
	// the first run attempt; nil for jobs that never ran under this
	// daemon incarnation.
	telem *jobTelemetry
	// cacheKey is the result-cache key for this job's (deck, options)
	// pair; empty when the deck failed to canonicalize. Immutable.
	cacheKey string
	// cacheHit marks a job completed instantly from the result cache —
	// it never consumed a worker or an evaluation.
	cacheHit bool
	// rootSpan is the open "job" root span of the distributed trace;
	// queueSpan covers the current submit/requeue → claim wait and
	// queuedAt its start. All three are nil/zero outside their window.
	// Span Begin/End calls happen OUTSIDE j.mu (see trace.go lock note);
	// j.mu only guards the pointers.
	rootSpan  *trace.Active
	queueSpan *trace.Active
	queuedAt  time.Time
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status is the wire form of a job's current state (GET /v1/jobs/{id}).
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Tenant is the submitting principal ("default" in open mode).
	Tenant string `json:"tenant,omitempty"`
	// DeckHash is the deck's canonical content hash; two submissions
	// with the same hash ran the same logical netlist.
	DeckHash string `json:"deck_hash,omitempty"`
	// CacheHit marks a job served from the result cache without
	// consuming a worker or an evaluation.
	CacheHit bool       `json:"cache_hit,omitempty"`
	Options  JobOptions `json:"options"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// BestCost is the best-so-far total cost (null until the first
	// progress event arrives).
	BestCost *float64 `json:"best_cost,omitempty"`
	// SpecVals are the most recently measured spec values.
	SpecVals map[string]float64 `json:"spec_vals,omitempty"`
	// Progress is the latest annealing telemetry sample.
	Progress *oblx.ProgressEvent `json:"progress,omitempty"`
}

// Status snapshots the job for the status endpoint.
func (j *Job) Status() *Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := &Status{
		ID: j.ID, State: j.state, Error: j.err,
		Tenant: j.Tenant, DeckHash: j.DeckHash, CacheHit: j.cacheHit,
		Options: j.Options, Created: j.Created,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if !math.IsNaN(j.bestCost) {
		c := j.bestCost
		s.BestCost = &c
	}
	if j.lastProg != nil {
		p := *j.lastProg
		s.Progress = &p
		s.SpecVals = p.SpecVals
	}
	return s
}

// Result returns the finished job's result, or nil while non-terminal.
func (j *Job) Result() *JobResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// publish appends an event to the replay buffer and fans it out to
// subscribers. Callers must hold j.mu.
func (j *Job) publishLocked(ev Event) {
	if len(j.events) >= maxBufferedEvents {
		// Evict the oldest progress event; keep state transitions.
		for i, old := range j.events {
			if old.Type == "progress" {
				j.events = append(j.events[:i], j.events[i+1:]...)
				break
			}
		}
	}
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop; SSE is a lossy telemetry feed
		}
	}
}

// Subscribe returns a copy of the replayable event history and a channel
// of future events. Call the returned cancel function when done.
func (j *Job) Subscribe() (replay []Event, ch chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay = append([]Event(nil), j.events...)
	ch = make(chan Event, 64)
	if j.subs == nil {
		j.subs = make(map[chan Event]struct{})
	}
	j.subs[ch] = struct{}{}
	return replay, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// ErrDraining is returned by Submit during graceful shutdown; the HTTP
// layer maps it to 503 Service Unavailable.
var ErrDraining = errors.New("server: draining, not accepting new jobs")

// ErrQueueFull is returned by Submit when the bounded queue is at
// capacity; the HTTP layer maps it to 429 Too Many Requests with a
// Retry-After header.
var ErrQueueFull = errors.New("server: queue full, try again later")

// DeckError wraps a deck validation failure; the HTTP layer maps it to
// 400 Bad Request.
type DeckError struct{ Err error }

func (e *DeckError) Error() string { return e.Err.Error() }
func (e *DeckError) Unwrap() error { return e.Err }

// QuotaError is a per-tenant admission rejection (lane full, or the
// evaluation-rate budget overdrawn); the HTTP layer maps it to 429 with
// a Retry-After estimate, leaving other tenants unaffected.
type QuotaError struct {
	Tenant string
	Reason string
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("server: tenant %q over quota: %s", e.Tenant, e.Reason)
}

// Options configures a Manager.
type Options struct {
	// StateDir persists jobs and checkpoints for restart recovery.
	// Empty → in-memory only (jobs die with the process).
	StateDir string
	// Workers bounds concurrent synthesis jobs (0 → GOMAXPROCS).
	Workers int
	// Registry receives service metrics (nil → a private registry).
	Registry *metrics.Registry
	// CheckpointEvery is the move interval between job checkpoints
	// (0 → 5000). Only meaningful with a StateDir.
	CheckpointEvery int
	// ProgressEvery is the default move interval between progress
	// events for jobs that don't set their own (0 → 500).
	ProgressEvery int
	// MaxMovesLimit rejects jobs asking for more than this move budget
	// (0 → no limit) — an admission-control guard for shared daemons.
	MaxMovesLimit int
	// EnableProfiling mounts net/http/pprof under /debug/pprof/ on the
	// Handler. Off by default: the profile endpoints expose internal
	// state (goroutine stacks, heap contents) and cost CPU while
	// sampling, so they are opt-in for diagnosis sessions only. See
	// docs/profiling.md.
	EnableProfiling bool
	// Logger receives structured operational logs (nil → discarded).
	// Job-scoped lines carry job/req/attempt/state attributes so one
	// job's lifecycle is greppable by a single ID across restarts.
	Logger *slog.Logger
	// TelemetrySampleEvery is the 1-in-N sampling cadence for per-stage
	// eval timing (0 → 64; negative → stage timing off). See
	// docs/observability.md.
	TelemetrySampleEvery int
	// FlightRecords is the per-job flight-recorder ring capacity
	// (0 → telemetry.DefaultFlightRecords).
	FlightRecords int
	// TraceRecords is the per-job sampled-eval span ring capacity for
	// distributed tracing (0 → trace.DefaultRingCap). Lifecycle spans
	// (root, queue-wait, anneal, corners) are pinned and never evicted.
	TraceRecords int

	// MaxQueue bounds the number of jobs waiting for a worker; Submit
	// returns ErrQueueFull (HTTP 429 + Retry-After) beyond it. 0 → the
	// queue is unbounded.
	MaxQueue int
	// StallTimeout is how long a running job may go without a progress
	// tick before the watchdog kills and requeues it. 0 → supervision
	// off.
	StallTimeout time.Duration
	// Retry shapes the backoff between supervised attempts of a stalled
	// job. Zero value → retry.Default(); MaxAttempts below overrides the
	// policy's cap when set.
	Retry retry.Policy
	// MaxAttempts caps supervised execution attempts before a job is
	// poisoned (0 → the retry policy's own cap; Default is 3).
	MaxAttempts int
	// JobDeadline bounds one job's wall-clock run time; a job that
	// exceeds it fails terminally with a deadline error. 0 → no limit.
	JobDeadline time.Duration
	// FS is the filesystem under the persistence layer (nil → the real
	// one). Chaos tests substitute a fault-injecting wrapper.
	FS durable.FS

	// Auth authenticates API keys and supplies per-tenant quotas and
	// fair-share weights (nil → open mode: every request maps to the
	// unlimited default tenant, which is exactly the pre-tenancy
	// behavior).
	Auth *tenancy.Authenticator
	// Cache is the content-addressed result cache (nil → caching off).
	// Identical (deck, options) resubmissions complete instantly from
	// the cached result without consuming a worker or an evaluation.
	Cache *rescache.Cache

	// ExternalExec hands job execution to an external fleet: the manager
	// keeps owning the durable job store, the queue, and the event
	// streams, but spawns no local synthesis workers and no stall
	// watchdog — a fleet coordinator (internal/fleet) drives jobs through
	// ClaimQueued / RecordExternalProgress / CompleteExternal and
	// supervises liveness with leases instead. Standalone daemons leave
	// this false and behave exactly as before.
	ExternalExec bool
}

// Manager owns the job table, the queue, and the worker pool.
type Manager struct {
	opt   Options
	reg   *metrics.Registry
	fsys  durable.FS
	rpol  retry.Policy
	log   *slog.Logger
	start time.Time

	auth  *tenancy.Authenticator
	cache *rescache.Cache

	mu   sync.Mutex
	cond *sync.Cond
	jobs map[string]*Job
	// sched replaced the single FIFO queue: per-tenant FIFO lanes
	// drained by weighted deficit round-robin. With one tenant (open
	// mode) it degenerates to the FIFO it replaced. Guarded by mu.
	sched *tenancy.Scheduler[*Job]
	// tenantQueued counts admitted-but-not-yet-running jobs per tenant,
	// including the window where a submission is persisting before its
	// enqueue, so concurrent submits cannot overshoot MaxQueued.
	tenantQueued map[string]int
	// tenantsSeen guards one-time per-tenant metric registration.
	tenantsSeen map[string]bool
	// batches groups child jobs of POST /v1/batches (in-memory; the
	// children themselves are durable).
	batches map[string]*Batch
	running     int
	draining    bool
	degraded    bool
	// fleetHealth, when set (SetFleetHealth), contributes the fleet
	// section of /healthz in coordinator mode.
	fleetHealth func() *FleetHealth

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// metric instruments
	mSubmitted  *metrics.Counter
	mEvals      *metrics.Counter
	mEvalRate   *metrics.Gauge
	mAccept     *metrics.Gauge
	mJobSecs    *metrics.Histogram
	mRetries    *metrics.Counter
	mStalls     *metrics.Counter
	mShed       *metrics.Counter
	mPersistErr *metrics.Counter
	mQuarantine *metrics.Counter
	mUnstable   *metrics.Counter
	// mStage holds the per-stage eval-timing histograms, indexed by
	// telemetry.Stage; job timers feed them through OnSample.
	mStage [telemetry.NumStages]*metrics.Histogram
}

// New creates a manager, recovers persisted jobs from the state
// directory, and starts the worker pool.
func New(opt Options) (*Manager, error) {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.CheckpointEvery <= 0 {
		opt.CheckpointEvery = 5000
	}
	if opt.ProgressEvery <= 0 {
		opt.ProgressEvery = 500
	}
	lg := opt.Logger
	if lg == nil {
		lg = telemetry.DiscardLogger()
	}
	reg := opt.Registry
	if reg == nil {
		reg = metrics.New()
	}
	rpol := opt.Retry
	if rpol == (retry.Policy{}) {
		rpol = retry.Default()
	}
	if opt.MaxAttempts > 0 {
		rpol.MaxAttempts = opt.MaxAttempts
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = durable.OS
	}
	auth := opt.Auth
	if auth == nil {
		auth = tenancy.Open()
	}
	m := &Manager{
		opt:          opt,
		reg:          reg,
		fsys:         fsys,
		rpol:         rpol,
		log:          lg,
		start:        time.Now(),
		auth:         auth,
		cache:        opt.Cache,
		jobs:         make(map[string]*Job),
		tenantQueued: make(map[string]int),
		tenantsSeen:  make(map[string]bool),
		batches:      make(map[string]*Batch),
	}
	m.sched = tenancy.NewScheduler[*Job](auth.Limits)
	m.cond = sync.NewCond(&m.mu)
	m.ctx, m.cancel = context.WithCancel(context.Background())

	m.mSubmitted = reg.Counter("oblxd_jobs_submitted_total")
	reg.SetHelp("oblxd_jobs_submitted_total", "jobs accepted for synthesis")
	m.mEvals = reg.Counter("oblxd_evals_total")
	reg.SetHelp("oblxd_evals_total", "circuit evaluations across all jobs")
	m.mEvalRate = reg.Gauge("oblxd_evals_per_sec")
	reg.SetHelp("oblxd_evals_per_sec", "recent evaluation throughput")
	m.mAccept = reg.Gauge("oblxd_accept_ratio")
	reg.SetHelp("oblxd_accept_ratio", "latest annealing acceptance ratio")
	m.mJobSecs = reg.Histogram("oblxd_job_seconds", metrics.DurationBuckets)
	reg.SetHelp("oblxd_job_seconds", "per-job wall time")
	reg.GaugeFunc("oblxd_queue_depth", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.sched.Len())
	})
	reg.SetHelp("oblxd_queue_depth", "jobs waiting for a worker")
	for _, st := range allStates {
		st := st
		reg.GaugeFunc("oblxd_jobs", func() float64 { return float64(m.countState(st)) },
			"state", string(st))
	}
	reg.SetHelp("oblxd_jobs", "jobs by lifecycle state")
	m.mRetries = reg.Counter("oblxd_job_retries_total")
	reg.SetHelp("oblxd_job_retries_total", "supervised job requeues after a stall")
	m.mStalls = reg.Counter("oblxd_stalls_total")
	reg.SetHelp("oblxd_stalls_total", "running jobs killed by the stall watchdog")
	m.mShed = reg.Counter("oblxd_shed_total")
	reg.SetHelp("oblxd_shed_total", "submissions rejected because the queue was full")
	m.mPersistErr = reg.Counter("oblxd_persist_errors_total")
	reg.SetHelp("oblxd_persist_errors_total", "failed state-directory writes")
	m.mQuarantine = reg.Counter("oblxd_quarantined_files_total")
	reg.SetHelp("oblxd_quarantined_files_total", "state files quarantined by the startup fsck")
	m.mUnstable = reg.Counter("oblxd_eval_unstable_total")
	reg.SetHelp("oblxd_eval_unstable_total", "transfer-function fits whose reduced model kept an RHP pole (still measured, but degraded)")
	reg.GaugeFunc("oblxd_degraded", func() float64 {
		if m.Degraded() {
			return 1
		}
		return 0
	})
	reg.SetHelp("oblxd_degraded", "1 while the state dir is unwritable and the daemon runs in-memory")
	for s := 0; s < telemetry.NumStages; s++ {
		m.mStage[s] = reg.Histogram("oblxd_eval_stage_seconds", telemetry.StageBuckets,
			"stage", telemetry.Stage(s).String())
	}
	reg.SetHelp("oblxd_eval_stage_seconds", "sampled wall time per cost-evaluation pipeline stage")
	reg.SetHelp("oblxd_span_duration_seconds", "distributed-trace span durations by span name")
	reg.SetHelp("oblxd_queue_wait_seconds", "submit (or requeue) to claim latency by tenant")
	reg.Gauge("oblxd_build_info", "version", buildVersion(), "goversion", runtime.Version()).Set(1)
	reg.SetHelp("oblxd_build_info", "build metadata; value is always 1")
	reg.GaugeFunc("oblxd_up", func() float64 { return float64(m.start.Unix()) })
	reg.SetHelp("oblxd_up", "daemon start time, unix seconds")

	if opt.StateDir != "" {
		if err := m.recover(); err != nil {
			return nil, err
		}
	}
	if !opt.ExternalExec {
		for i := 0; i < opt.Workers; i++ {
			m.wg.Add(1)
			go m.worker()
		}
		if opt.StallTimeout > 0 {
			m.wg.Add(1)
			go m.watchdog()
		}
	}
	return m, nil
}

// Registry exposes the manager's metrics registry (for /debug/metrics).
func (m *Manager) Registry() *metrics.Registry { return m.reg }

func (m *Manager) countState(st State) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		if j.State() == st {
			n++
		}
	}
	return n
}

// newID returns a 12-hex-char random job ID.
func newID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: id entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// Submit validates a deck and enqueues a synthesis job. A deck that
// fails to parse or validate is rejected with a *DeckError; during
// shutdown Submit returns ErrDraining; when the bounded queue is at
// capacity it returns ErrQueueFull.
func (m *Manager) Submit(deckSrc string, opt JobOptions) (*Job, error) {
	return m.SubmitAs(deckSrc, opt, "", "")
}

// SubmitWithRequestID is Submit tagged with the submitting request's
// X-Request-Id, echoed in the job's log lines for correlation.
func (m *Manager) SubmitWithRequestID(deckSrc string, opt JobOptions, requestID string) (*Job, error) {
	return m.SubmitAs(deckSrc, opt, requestID, "")
}

// cacheKeyFor computes a deck's canonical content hash and the
// result-cache key of the (deck, options) pair. The key covers exactly
// what determines the synthesis outcome: the canonical deck (circuit,
// specs, variables) and the solver options — not ProgressEvery, which
// only shapes telemetry.
func cacheKeyFor(deckSrc string, opt JobOptions) (deckHash, key string, err error) {
	canon, err := netlist.Canonical(deckSrc)
	if err != nil {
		return "", "", err
	}
	deckHash, err = netlist.CanonicalHash(deckSrc)
	if err != nil {
		return "", "", err
	}
	key = rescache.Key(canon, rescache.KeyOptions{
		Seed: opt.Seed, MaxMoves: opt.MaxMoves, Runs: opt.Runs, NoFreeze: opt.NoFreeze,
		Corners: opt.Corners,
	})
	return deckHash, key, nil
}

// ensureTenantMetrics registers the per-tenant gauges once per tenant.
// Must be called without m.mu held: the registered func takes m.mu, so
// registering under it would invert the registry→manager lock order
// the exposition path establishes.
func (m *Manager) ensureTenantMetrics(tenant string) {
	m.mu.Lock()
	seen := m.tenantsSeen[tenant]
	m.tenantsSeen[tenant] = true
	m.mu.Unlock()
	if seen {
		return
	}
	t := tenant
	m.reg.GaugeFunc("oblxd_tenant_queue_depth", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.sched.Depth(t))
	}, "tenant", t)
	m.reg.SetHelp("oblxd_tenant_queue_depth", "jobs waiting in each tenant's lane")
}

// SubmitAs is the tenant-aware submit path: the job lands in the
// tenant's fair-share lane after clearing the tenant's quota (queued
// bound and evaluation-rate budget → *QuotaError, HTTP 429) and, when
// a result cache is configured, the cache — an identical (deck,
// options) resubmission completes instantly from the cached result
// without consuming a worker or a single evaluation. Empty tenant →
// the default tenant (open mode).
func (m *Manager) SubmitAs(deckSrc string, opt JobOptions, requestID, tenant string) (*Job, error) {
	return m.SubmitTraced(deckSrc, opt, requestID, tenant, "")
}

// SubmitTraced is SubmitAs continuing the caller's W3C trace: a valid
// traceparent header makes the client's trace ID the job's trace ID and
// the client's span the remote parent of the job root span, so the
// job's whole lifecycle — queue wait, fleet hops, anneal, per-corner
// evals — hangs off the caller's trace. Absent or malformed, the trace
// ID derives from the request ID instead.
func (m *Manager) SubmitTraced(deckSrc string, opt JobOptions, requestID, tenant, traceparent string) (*Job, error) {
	submitStart := time.Now()
	if tenant == "" {
		tenant = tenancy.DefaultTenantName
	}
	d, err := netlist.Parse(deckSrc)
	if err != nil {
		return nil, &DeckError{Err: err}
	}
	if err := d.Validate(); err != nil {
		return nil, &DeckError{Err: err}
	}
	// Corner selection is part of the cost function: reject unknown
	// names at the door instead of queueing a job doomed to fail.
	if _, err := astrx.SelectCorners(d, opt.Corners); err != nil {
		return nil, &DeckError{Err: err}
	}
	opt.defaults()
	if m.opt.MaxMovesLimit > 0 && opt.MaxMoves > m.opt.MaxMovesLimit {
		return nil, &DeckError{Err: fmt.Errorf("server: max_moves %d exceeds the daemon limit %d",
			opt.MaxMoves, m.opt.MaxMovesLimit)}
	}
	// A deck that parses always canonicalizes; treat failure as a deck
	// error rather than guessing at a key.
	deckHash, cacheKey, err := cacheKeyFor(deckSrc, opt)
	if err != nil {
		return nil, &DeckError{Err: err}
	}
	m.ensureTenantMetrics(tenant)

	j := &Job{
		ID:        newID(),
		Deck:      deckSrc,
		Options:   opt,
		Created:   time.Now(),
		Tenant:    tenant,
		DeckHash:  deckHash,
		state:     StateQueued,
		bestCost:  math.NaN(),
		requestID: requestID,
		cacheKey:  cacheKey,
	}
	m.initJobTrace(j, traceparent)

	// Cache lookup precedes quota admission: a hit consumes no queue
	// slot, no worker, and no evaluation budget.
	if m.Draining() {
		return nil, ErrDraining
	}
	if payload, ok := m.cache.Get(cacheKey); ok {
		jj, cerr := m.completeFromCache(j, payload)
		if cerr == nil {
			j.trace.AddTimed("submit", "", submitStart, time.Since(submitStart),
				"cache_hit", "true")
			j.rootSpan.SetAttr("cache_hit", "true")
			m.endJobTrace(j, "ok", "cache-hit")
		}
		return jj, cerr
	}

	j.events = append(j.events, Event{Type: "state", State: StateQueued})

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if m.opt.MaxQueue > 0 && m.sched.Len() >= m.opt.MaxQueue {
		m.mu.Unlock()
		m.mShed.Inc()
		return nil, ErrQueueFull
	}
	// tenantQueued (not sched.Depth) is the admission count: it already
	// includes concurrent submissions still persisting below, so racing
	// submits cannot overshoot the tenant's bound.
	if t := m.auth.Tenant(tenant); t != nil {
		if q := t.Quota.MaxQueued; q > 0 && m.tenantQueued[tenant] >= q {
			m.mu.Unlock()
			m.mShed.Inc()
			return nil, &QuotaError{Tenant: tenant,
				Reason: fmt.Sprintf("max_queued %d reached", q)}
		}
	}
	m.tenantQueued[tenant]++
	m.jobs[j.ID] = j
	m.mu.Unlock()

	// The rate budget charges the job's worst-case evaluation count.
	if !m.auth.AllowEvals(tenant, float64(opt.MaxMoves)*float64(opt.Runs)) {
		m.mu.Lock()
		m.tenantQueued[tenant]--
		delete(m.jobs, j.ID)
		m.mu.Unlock()
		m.mShed.Inc()
		return nil, &QuotaError{Tenant: tenant, Reason: "evaluation budget exhausted"}
	}

	// Persist the queued record before the job becomes runnable, so a
	// worker can never transition a job that has no record on disk.
	if err := m.persist(j); err != nil {
		m.jlog(j).Error("persist failed", "err", err)
	}

	m.markQueued(j)
	m.mu.Lock()
	m.sched.Push(tenant, j)
	m.cond.Signal()
	m.mu.Unlock()

	j.trace.AddTimed("submit", "", submitStart, time.Since(submitStart))
	m.mSubmitted.Inc()
	m.reg.Counter("oblxd_jobs_total", "tenant", tenant).Inc()
	m.reg.SetHelp("oblxd_jobs_total", "jobs accepted, by tenant")
	m.jlog(j).Info("job queued", "state", StateQueued,
		"moves", opt.MaxMoves, "runs", opt.Runs, "seed", opt.Seed)
	return j, nil
}

// completeFromCache finishes a submission as an instant cache hit: the
// job record is terminal from birth (state done, cache_hit), its event
// stream is a single terminal event, and no worker, queue slot, or
// evaluation is consumed.
func (m *Manager) completeFromCache(j *Job, payload []byte) (*Job, error) {
	var result JobResult
	if err := json.Unmarshal(payload, &result); err != nil {
		// A quarantine-worthy payload should have been caught by the
		// cache's own verification; treat it as an internal error rather
		// than silently re-running.
		return nil, fmt.Errorf("server: corrupt cache payload for key %s: %w", j.cacheKey, err)
	}
	result.ID = j.ID
	now := time.Now()
	j.state = result.State
	j.err = result.Error
	j.finished = now
	j.result = &result
	j.cacheHit = true
	j.events = []Event{{Type: "state", State: result.State, Error: result.Error}}

	m.mu.Lock()
	m.jobs[j.ID] = j
	m.mu.Unlock()

	if err := m.persist(j); err != nil {
		m.jlog(j).Error("persist failed", "err", err)
	}
	m.mSubmitted.Inc()
	m.reg.Counter("oblxd_jobs_total", "tenant", j.Tenant).Inc()
	m.reg.Counter("oblxd_jobs_finished_total", "state", string(result.State)).Inc()
	m.jlog(j).Info("job completed from cache", "state", result.State, "deck_hash", j.DeckHash)
	return j, nil
}

// jlog returns the manager logger scoped to one job, carrying the
// job/req correlation attributes every lifecycle line shares. requestID
// is immutable after the job is published, so reading it unlocked is
// safe.
func (m *Manager) jlog(j *Job) *slog.Logger {
	lg := m.log.With("job", j.ID)
	if j.Tenant != "" {
		lg = lg.With("tenant", j.Tenant)
	}
	if j.requestID != "" {
		lg = lg.With("req", j.requestID)
	}
	if tid := j.trace.TraceID(); tid != "" {
		lg = lg.With("trace", tid)
	}
	return lg
}

// Get returns a job by ID, or nil.
func (m *Manager) Get(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// Jobs returns all jobs, newest first.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	for i := 0; i < len(out); i++ {
		for k := i + 1; k < len(out); k++ {
			if out[k].Created.After(out[i].Created) {
				out[i], out[k] = out[k], out[i]
			}
		}
	}
	return out
}

// Cancel cancels a queued or running job. Cancelling a queued job is
// immediate; a running job's context is cancelled and the annealer
// returns its best-so-far design, which is kept as the (partial) result.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil {
		m.mu.Unlock()
		return fmt.Errorf("server: no job %s", id)
	}
	// Remove from the lane if still waiting. The tenant's MaxQueued
	// quota frees right here, not when a worker would have reached the
	// job — cancelling queued work must immediately make room for new
	// submissions.
	if m.sched.Remove(j.Tenant, j) {
		m.tenantQueued[j.Tenant]--
	}
	m.mu.Unlock()

	j.mu.Lock()
	switch {
	case j.state.terminal():
		j.mu.Unlock()
		return fmt.Errorf("server: job %s already %s", id, j.State())
	case j.state == StateQueued:
		j.state = StateCancelled
		j.finished = time.Now()
		j.userCancelled = true
		j.result = &JobResult{ID: j.ID, State: StateCancelled}
		j.publishLocked(Event{Type: "state", State: StateCancelled})
		j.mu.Unlock()
		if err := m.persist(j); err != nil {
			m.jlog(j).Error("persist failed", "err", err)
		}
		m.endJobTrace(j, "cancelled", "cancelled")
	default: // running
		j.userCancelled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	m.jlog(j).Info("cancel requested")
	return nil
}

// Draining reports whether the manager has begun shutting down.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Shutdown gracefully stops the manager: intake closes (Submit returns
// ErrDraining), queued jobs stay persisted for the next incarnation,
// running jobs are cancelled — each writes a final checkpoint at its
// exact cancellation move and is re-marked queued on disk — and the
// worker pool is drained. ctx bounds the wait.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.cond.Broadcast()
	m.mu.Unlock()

	m.cancel() // running jobs observe this and checkpoint out

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown timed out: %w", ctx.Err())
	}
}

// worker pulls jobs off the fair-share scheduler until shutdown. Pop
// can decline with jobs still queued (every backlogged lane at its
// tenant's running cap), so the wait condition is "Pop succeeded", not
// "queue non-empty" — DoneRunning signals the cond when a slot frees.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		var (
			j      *Job
			tenant string
		)
		for !m.draining {
			var ok bool
			j, tenant, ok = m.sched.Pop()
			if ok {
				break
			}
			m.cond.Wait()
		}
		if m.draining {
			m.mu.Unlock()
			return
		}
		m.tenantQueued[tenant]--
		m.running++
		m.mu.Unlock()

		m.runJob(j)

		m.mu.Lock()
		m.running--
		m.sched.DoneRunning(tenant)
		// The freed running slot may unblock a lane capped at
		// MaxRunning; wake a waiter to re-check.
		m.cond.Signal()
		m.mu.Unlock()
	}
}

// synthesize and synthesizeBest are seams over the engine entry points,
// so supervision tests can substitute a run that stalls or blocks.
var (
	synthesize     = oblx.Run
	synthesizeBest = oblx.RunBest
)

// runJob executes one synthesis job end to end.
func (m *Manager) runJob(j *Job) {
	ctx, cancel := context.WithCancel(m.ctx)
	if m.opt.JobDeadline > 0 {
		ctx, cancel = context.WithTimeout(m.ctx, m.opt.JobDeadline)
	}
	defer cancel()

	j.mu.Lock()
	if j.state.terminal() { // cancelled while queued, raced with dequeue
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.lastTick = j.started
	j.cancel = cancel
	resume := j.resume
	attempt := j.attempts + 1
	j.publishLocked(Event{Type: "state", State: StateRunning})
	j.mu.Unlock()
	if err := m.persist(j); err != nil {
		m.jlog(j).Error("persist failed", "err", err)
	}
	m.noteClaimed(j)
	m.jlog(j).Info("job running", "state", StateRunning, "attempt", attempt)

	deck, err := netlist.Parse(j.Deck)
	if err != nil { // validated at submit; only possible via disk corruption
		m.finishJob(j, nil, fmt.Errorf("server: reparse deck: %w", err), false)
		return
	}

	progEvery := j.Options.ProgressEvery
	if progEvery <= 0 {
		progEvery = m.opt.ProgressEvery
	}
	// Progress accounting for the evals/sec gauge: deltas between
	// consecutive events of the same run.
	var progMu sync.Mutex
	lastEvals := make(map[int]int)
	lastTime := make(map[int]time.Time)

	telem := m.jobTelem(j)
	opt := oblx.Options{
		Seed:          j.Options.Seed,
		MaxMoves:      j.Options.MaxMoves,
		NoFreeze:      j.Options.NoFreeze,
		Corners:       j.Options.Corners,
		ProgressEvery: progEvery,
		StageTimer:    telem.timer,
		Trace:         j.trace,
		Progress: func(ev oblx.ProgressEvent) {
			now := time.Now()
			telem.flight.Record(ev.FlightRecord())
			progMu.Lock()
			if prev, ok := lastEvals[ev.Run]; ok && ev.Evals > prev {
				m.mEvals.Add(int64(ev.Evals - prev))
				if dt := now.Sub(lastTime[ev.Run]).Seconds(); dt > 0 {
					m.mEvalRate.Set(float64(ev.Evals-prev) / dt)
				}
			}
			lastEvals[ev.Run] = ev.Evals
			lastTime[ev.Run] = now
			progMu.Unlock()
			m.mAccept.Set(ev.AcceptRatio)

			j.mu.Lock()
			p := ev
			j.lastProg = &p
			j.lastTick = now
			if math.IsNaN(j.bestCost) || ev.BestCost < j.bestCost {
				j.bestCost = ev.BestCost
			}
			j.publishLocked(Event{Type: "progress", Prog: &p})
			j.mu.Unlock()
		},
	}

	var res *oblx.Result
	if j.Options.Runs <= 1 {
		if m.opt.StateDir != "" {
			opt.CheckpointPath = m.checkpointPath(j.ID)
			opt.CheckpointEvery = m.opt.CheckpointEvery
			opt.Resume = resume
		}
		res, err = synthesize(ctx, deck, opt)
	} else {
		// Checkpointing is a single-run feature (n parallel runs would
		// race on one snapshot); multi-run jobs restart from scratch
		// after a daemon kill.
		var errs []error
		res, _, errs = synthesizeBest(ctx, deck, j.Options.Runs, opt)
		if res == nil {
			err = errors.Join(errs...)
		}
	}
	deadlineHit := m.opt.JobDeadline > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded)
	m.finishJob(j, res, err, deadlineHit)
}

// watchdog periodically scans running jobs for missing progress ticks
// and kills stalled ones; finishJob then requeues them with backoff or
// poisons repeat offenders.
func (m *Manager) watchdog() {
	defer m.wg.Done()
	interval := m.opt.StallTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	for {
		if retry.Sleep(m.ctx, interval) != nil {
			return // shutting down
		}
		m.mu.Lock()
		jobs := make([]*Job, 0, len(m.jobs))
		for _, j := range m.jobs {
			jobs = append(jobs, j)
		}
		m.mu.Unlock()
		now := time.Now()
		for _, j := range jobs {
			j.mu.Lock()
			stalled := j.state == StateRunning && j.cancel != nil && !j.stallKilled &&
				now.Sub(j.lastTick) > m.opt.StallTimeout
			var cancel context.CancelFunc
			if stalled {
				j.stallKilled = true
				cancel = j.cancel
			}
			j.mu.Unlock()
			if stalled {
				m.mStalls.Inc()
				m.jlog(j).Warn("job stalled, killing", "stall_timeout", m.opt.StallTimeout)
				cancel()
			}
		}
	}
}

// finishJob records the outcome of a run: done, failed, cancelled (user
// request, partial result kept), poisoned/requeued (watchdog kill), a
// terminal deadline failure, or — when the manager is draining — a
// checkpointed hand-off back to the queued state for the next daemon
// incarnation.
func (m *Manager) finishJob(j *Job, res *oblx.Result, err error, deadlineHit bool) {
	j.mu.Lock()
	j.cancel = nil
	userCancelled := j.userCancelled
	stalled := j.stallKilled
	j.stallKilled = false
	j.mu.Unlock()

	if stalled && !userCancelled {
		// The watchdog killed this run. The annealer checkpointed at the
		// cancellation move, so the retry resumes from there (single-run
		// jobs) rather than replaying the whole anneal.
		m.retryOrPoison(j, fmt.Sprintf("stalled: no progress within %s", m.opt.StallTimeout))
		return
	}

	shutdownInterrupted := res != nil && res.Cancelled && !userCancelled && m.Draining()
	if shutdownInterrupted {
		// The annealer wrote its final checkpoint at the cancellation
		// move; hand the job back to the queue on disk so the next
		// incarnation resumes it.
		j.mu.Lock()
		j.state = StateQueued
		j.started = time.Time{}
		j.mu.Unlock()
		if err := m.persist(j); err != nil {
			m.jlog(j).Error("persist failed", "err", err)
		}
		// The root span stays open — the next incarnation re-attaches the
		// same trace context — but the spans so far must survive the
		// process, so snapshot without ending.
		m.snapshotTrace(j, "shutdown")
		m.jlog(j).Info("job checkpointed for restart", "state", StateQueued)
		return
	}

	now := time.Now()
	result := BuildJobResult(j.ID, res, err)
	if deadlineHit && !userCancelled {
		// The per-job wall-clock deadline fired; the partial best-so-far
		// design is kept, but the job is a terminal failure, not a
		// cancellation the user asked for. The flight recorder's last
		// moves go to disk for the post-mortem.
		m.snapshotFlight(j, fmt.Sprintf("deadline %s exceeded", m.opt.JobDeadline))
		result.State = StateFailed
		result.Error = fmt.Sprintf("server: job deadline %s exceeded", m.opt.JobDeadline)
	}
	state := result.State
	if res != nil {
		if n := res.Failures.Unstable; n > 0 {
			m.mUnstable.Add(int64(n))
		}
		for name, cf := range res.Failures.Corners {
			if cf.Fails > 0 {
				m.reg.Counter("oblxd_corner_eval_failures_total", "corner", name).Add(int64(cf.Fails))
				m.reg.SetHelp("oblxd_corner_eval_failures_total", "per-corner evaluation failures in worst-case runs (post-retry)")
			}
			if cf.Quarantined {
				m.jlog(j).Warn("corner quarantined for the rest of the run",
					"corner", name, "fails", cf.Fails, "retries", cf.Retries)
			}
		}
		if res.Degraded {
			m.reg.Counter("oblxd_jobs_degraded_total").Inc()
			m.reg.SetHelp("oblxd_jobs_degraded_total", "worst-case jobs that finished with at least one corner quarantined")
		}
		if res.CheckpointErr != nil {
			m.jlog(j).Warn("checkpoint writes failed", "err", res.CheckpointErr)
		}
	}

	// Remove the crash-recovery checkpoint before the terminal state
	// becomes observable, so "terminal ⇒ no checkpoint" holds for every
	// watcher. If the daemon dies in the window before the terminal
	// record persists below, recovery sees a running record with no
	// checkpoint and re-runs the job from scratch — at-least-once, never
	// lost.
	m.removeCheckpoint(j, state)

	j.mu.Lock()
	j.state = state
	j.err = result.Error
	j.finished = now
	j.result = result
	j.publishLocked(Event{Type: "state", State: state, Error: result.Error})
	started := j.started
	j.mu.Unlock()

	m.reg.Counter("oblxd_jobs_finished_total", "state", string(state)).Inc()
	if !started.IsZero() {
		m.mJobSecs.Observe(now.Sub(started).Seconds())
	}
	if err := m.persist(j); err != nil {
		m.jlog(j).Error("persist failed", "err", err)
	}
	m.cacheStore(j, state, result)
	m.endJobTrace(j, traceStatus(state), string(state))
	if result.Error != "" {
		m.jlog(j).Warn("job finished", "state", state, "err", result.Error)
	} else {
		m.jlog(j).Info("job finished", "state", state)
	}
}

// traceStatus maps a terminal job state onto a span status.
func traceStatus(s State) string {
	switch s {
	case StateDone:
		return "ok"
	case StateCancelled:
		return "cancelled"
	default:
		return "error"
	}
}

// cacheStore records a successfully finished job's result in the
// result cache (rw mode only; no-op otherwise). Only clean StateDone
// outcomes are cacheable — a cancelled or failed run's partial result
// must never be served as the answer to a fresh submission.
func (m *Manager) cacheStore(j *Job, state State, result *JobResult) {
	if state != StateDone || result == nil || j.cacheKey == "" {
		return
	}
	data, err := json.Marshal(result)
	if err != nil {
		return
	}
	m.cache.Put(j.cacheKey, data)
}

// BuildJobResult projects a synthesis outcome into the wire-form job
// result: terminal-state classification, the result view, and the
// reference-simulation verdict. It is exported because fleet workers
// build the result next to the anneal — where the compiled problem
// lives — and ship the finished JobResult to the coordinator.
func BuildJobResult(id string, res *oblx.Result, runErr error) *JobResult {
	result := &JobResult{ID: id}
	var state State
	switch {
	case runErr != nil:
		state = StateFailed
		result.Error = runErr.Error()
	case res == nil:
		state = StateFailed
		result.Error = "server: synthesis returned no result"
	case res.Cancelled:
		state = StateCancelled
	default:
		state = StateDone
	}
	if res != nil {
		result.Result = res.View()
		// Reference-simulate the final design. A cancelled job's
		// half-annealed point may fail to verify; that is a caveat on
		// the partial result, not a job failure.
		rep, verr := verify.Design(res.Compiled, res.X, res.State.SpecVals)
		if verr != nil {
			result.VerifyError = verr.Error()
		} else {
			vs := &VerifySummary{
				Specs:          rep.Specs,
				BiasIterations: rep.BiasIterations,
				BiasConverged:  rep.BiasConverged,
				MaxKCL:         rep.MaxKCL,
				WorstRelErr:    rep.WorstRelErr,
				AllMet:         true,
			}
			for _, row := range rep.Specs {
				if !row.Objective && !row.Met {
					vs.AllMet = false
				}
			}
			result.Verify = vs
		}
	}
	result.State = state
	return result
}

// retryOrPoison handles a watchdog-killed run: record the failure,
// requeue with exponential backoff while attempts remain, and poison the
// job — terminally, with its history attached — once they run out.
func (m *Manager) retryOrPoison(j *Job, cause string) {
	// Dump the flight recorder first: whatever the annealer was doing in
	// its last N moves is the evidence the post-mortem needs, and the
	// next attempt keeps appending to the same ring. The trace snapshot
	// rides along for the same reason.
	m.snapshotFlight(j, cause)
	m.snapshotTrace(j, cause)

	j.mu.Lock()
	j.attempts++
	attempt := j.attempts
	j.history = append(j.history, JobFailure{Attempt: attempt, Error: cause, Time: time.Now()})

	if m.rpol.Exhausted(attempt) {
		j.mu.Unlock()
		// Same ordering as finishJob: checkpoint gone before the terminal
		// state is observable.
		m.removeCheckpoint(j, StatePoisoned)

		errMsg := fmt.Sprintf("server: poisoned after %d attempts; last: %s", attempt, cause)
		j.mu.Lock()
		j.state = StatePoisoned
		j.err = errMsg
		j.finished = time.Now()
		j.result = &JobResult{ID: j.ID, State: StatePoisoned, Error: errMsg, History: j.history}
		j.publishLocked(Event{Type: "state", State: StatePoisoned, Error: errMsg})
		started := j.started
		j.mu.Unlock()

		m.reg.Counter("oblxd_jobs_finished_total", "state", string(StatePoisoned)).Inc()
		if !started.IsZero() {
			m.mJobSecs.Observe(time.Since(started).Seconds())
		}
		if err := m.persist(j); err != nil {
			m.jlog(j).Error("persist failed", "err", err)
		}
		m.jlog(j).Error("job poisoned", "state", StatePoisoned, "attempt", attempt, "cause", cause)
		m.endJobTrace(j, "error", cause)
		return
	}

	j.state = StateQueued
	j.started = time.Time{}
	// Resume the retry from the checkpoint the killed run left behind
	// (single-run jobs only, like restart recovery).
	if m.opt.StateDir != "" && j.Options.Runs <= 1 {
		if ck, err := oblx.LoadCheckpointFS(m.fsys, m.checkpointPath(j.ID)); err == nil {
			j.resume = ck
		}
	}
	j.publishLocked(Event{Type: "state", State: StateQueued, Error: cause})
	j.mu.Unlock()

	m.mRetries.Inc()
	// The backoff is queue time: the next queue-wait span opens now, so
	// submit→claim latency counts the supervisor's delay too.
	m.markQueued(j)
	if err := m.persist(j); err != nil {
		m.jlog(j).Error("persist failed", "err", err)
	}
	delay := m.rpol.Backoff(attempt)
	m.jlog(j).Warn("job requeued", "state", StateQueued, "backoff", delay.Round(time.Millisecond),
		"attempt", attempt, "max_attempts", m.rpol.MaxAttempts, "cause", cause)
	go func() {
		if retry.Sleep(m.ctx, delay) != nil {
			return // draining: the job stays parked queued on disk
		}
		m.enqueue(j)
	}()
}

// enqueue puts a backoff-delayed job back on the run queue, unless the
// manager began draining (the job stays queued on disk for the next
// incarnation) or the job was cancelled while waiting.
func (m *Manager) enqueue(j *Job) {
	if j.State() != StateQueued {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return
	}
	m.sched.Push(j.Tenant, j)
	m.tenantQueued[j.Tenant]++
	m.cond.Signal()
}

// Health is the JSON body of GET /healthz. docs/operations.md documents
// the full schema.
type Health struct {
	// Status is "ok", "degraded" (state dir unwritable, running
	// in-memory), or "draining" (shutting down; served with 503).
	Status           string  `json:"status"`
	QueueDepth       int     `json:"queue_depth"`
	WorkersBusy      int     `json:"workers_busy"`
	Workers          int     `json:"workers"`
	StateDirWritable bool    `json:"state_dir_writable"`
	UptimeSeconds    float64 `json:"uptime_seconds"`
	// Fleet carries the coordinator-mode extension: registered fleet
	// workers with a liveness breakdown, and the claimable queue depth.
	// Absent in standalone mode.
	Fleet *FleetHealth `json:"fleet,omitempty"`
}

// FleetHealth is the fleet section of /healthz in coordinator mode.
type FleetHealth struct {
	// Workers counts every fleet worker the coordinator has heard from.
	Workers int `json:"workers"`
	// WorkersByState breaks Workers down by liveness: "alive" (recent
	// heartbeat), "suspect" (missed a few), "dead" (past the lease TTL).
	WorkersByState map[string]int `json:"workers_by_state"`
	// QueueDepth is the number of jobs waiting for a worker to claim.
	QueueDepth int `json:"queue_depth"`
}

// SetFleetHealth installs the hook that contributes the fleet section
// of /healthz; the fleet coordinator calls it once at construction.
func (m *Manager) SetFleetHealth(fn func() *FleetHealth) {
	m.mu.Lock()
	m.fleetHealth = fn
	m.mu.Unlock()
}

// Health snapshots the manager for the health endpoint.
func (m *Manager) Health() Health {
	m.mu.Lock()
	h := Health{
		Status:           "ok",
		QueueDepth:       m.sched.Len(),
		WorkersBusy:      m.running,
		Workers:          m.opt.Workers,
		StateDirWritable: m.opt.StateDir != "" && !m.degraded,
		UptimeSeconds:    time.Since(m.start).Seconds(),
	}
	switch {
	case m.draining:
		h.Status = "draining"
	case m.degraded:
		h.Status = "degraded"
	}
	fh := m.fleetHealth
	m.mu.Unlock()
	if fh != nil {
		h.Fleet = fh()
	}
	return h
}

// retryAfterEstimate predicts when a shed submission is worth retrying:
// the expected queue-drain time from measured job durations (5s per job
// until any job has finished here), clamped to [1s, 5m]. The HTTP layer
// rounds it up into the 429 Retry-After header.
func (m *Manager) retryAfterEstimate() time.Duration {
	avg := 5.0
	if n := m.mJobSecs.Count(); n > 0 {
		avg = m.mJobSecs.Sum() / float64(n)
	}
	m.mu.Lock()
	depth := m.sched.Len()
	m.mu.Unlock()
	workers := m.opt.Workers
	if workers < 1 {
		workers = 1
	}
	est := time.Duration(avg * float64(depth) / float64(workers) * float64(time.Second))
	if est < time.Second {
		est = time.Second
	}
	if est > 5*time.Minute {
		est = 5 * time.Minute
	}
	return est
}
