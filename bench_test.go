// Benchmarks regenerating (at reduced scale) every table and figure of
// the paper's evaluation section. Run with:
//
//	go test -bench=. -benchmem
//
// Full-scale regeneration is `go run ./cmd/tables -all`; these benches
// measure the per-unit costs that the tables are built from, so their
// shapes (which circuit is slowest, AWE vs AC sweep, cost per circuit
// evaluation) can be tracked as the code evolves. EXPERIMENTS.md maps
// each bench to its table/figure.
package astrx_test

import (
	"context"
	"testing"

	root "astrx"
	"astrx/internal/acsim"
	"astrx/internal/astrx"
	"astrx/internal/awe"
	"astrx/internal/bench"
	"astrx/internal/netlist"
	"astrx/internal/ckttest"
	"astrx/internal/dcsolve"
	"astrx/internal/eqbase"
	"astrx/internal/expr"
	"astrx/internal/mna"
	"astrx/internal/oblx"
)

// BenchmarkTable1Compile measures the full ASTRX analysis of the entire
// benchmark suite — the content of Table 1.
func BenchmarkTable1Compile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != len(bench.Suite) {
			b.Fatal("short table")
		}
	}
}

// benchmarkCostEval measures one cost-function evaluation — the paper's
// "time/ckt eval" metric (Table 2's second-to-last row) for a circuit.
func benchmarkCostEval(b *testing.B, c bench.Circuit) {
	comp, err := bench.Compile(c)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, len(comp.Vars()))
	for i, v := range comp.Vars() {
		x[i] = v.Start()
	}
	comp.Cost(x) // warm the workspace so steady-state allocations are measured
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cost := comp.Cost(x); cost <= 0 {
			b.Fatal("degenerate cost")
		}
	}
	b.StopTimer()
	// Per-deck matrix shape: dimension of the largest jig system, total
	// structural nonzeros and factor fill across jigs, and the fraction
	// of jigs whose factorization ran the sparse replay (1 = all sparse,
	// 0 = dense fallback everywhere). Tracked in BENCH_oblx.json so a
	// deck silently dropping off the sparse path shows up in review.
	var rows, nnz, fill, sparse float64
	stats := comp.Workspace().JigStats()
	for _, s := range stats {
		if float64(s.Rows) > rows {
			rows = float64(s.Rows)
		}
		nnz += float64(s.NNZ)
		fill += float64(s.FillNNZ)
		if s.Sparse {
			sparse++
		}
	}
	if len(stats) > 0 {
		sparse /= float64(len(stats))
	}
	b.ReportMetric(rows, "mna_rows")
	b.ReportMetric(nnz, "mna_nnz")
	b.ReportMetric(fill, "fill_nnz")
	b.ReportMetric(sparse, "sparse")
}

// BenchmarkTable2EvalSimpleOTA .. BiCMOS: per-circuit evaluation cost,
// Table 2's "time/ckt eval" row across its five circuits.
func BenchmarkTable2EvalSimpleOTA(b *testing.B) { benchmarkCostEval(b, bench.SimpleOTA) }

func BenchmarkTable2EvalOTA(b *testing.B) { benchmarkCostEval(b, bench.OTA) }

func BenchmarkTable2EvalTwoStage(b *testing.B) { benchmarkCostEval(b, bench.TwoStage) }

func BenchmarkTable2EvalFoldedCascode(b *testing.B) { benchmarkCostEval(b, bench.FoldedCascode) }

func BenchmarkTable2EvalBiCMOS(b *testing.B) { benchmarkCostEval(b, bench.BiCMOSTwoStage) }

// BenchmarkTable2EvalCorners measures one worst-case candidate
// evaluation of the Simple OTA over nominal + two process corners
// through the K-lane batch workspace — the per-candidate price of
// corner-aware synthesis next to the nominal-only rows above. The
// `corners` metric records K, so benchjson can derive ns per corner
// evaluation and compare it against the single-lane numbers.
func BenchmarkTable2EvalCorners(b *testing.B) {
	src := bench.DeckSource(bench.SimpleOTA) +
		"\n.corner slow temp=85 nmos3.vto=0.95 vdd=2.4\n.corner fast temp=-40 vdd=2.6\n"
	deck, err := netlist.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	cs, err := astrx.CompileCorners(deck, []string{"slow", "fast"}, astrx.CostOptions{})
	if err != nil {
		b.Fatal(err)
	}
	bw := cs.NewCornerBatch()
	x := make([]float64, cs.NVars())
	for i, v := range cs.Vars() {
		x[i] = v.Start()
	}
	xs := make([][]float64, cs.K())
	for i := range xs {
		xs[i] = cs.LaneX(i, x, nil)
	}
	include := make([]bool, cs.K())
	evaluated := make([]bool, cs.K())
	for i := range include {
		include[i] = true
	}
	bw.Run(xs) // warm the lane workspaces so steady-state allocations are measured
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bw.Run(xs)
		for j := 0; j < cs.K(); j++ {
			evaluated[j] = bw.Lane(j).Err() == nil
		}
		if cost := cs.WorstCase(bw, include, evaluated); cost.Total <= 0 {
			b.Fatal("degenerate worst-case cost")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cs.K()), "corners")
}

// BenchmarkTable2Synthesis runs a short Simple OTA synthesis per
// iteration — the "CPU time/run" row at miniature scale.
func BenchmarkTable2Synthesis(b *testing.B) {
	src := bench.DeckSource(bench.SimpleOTA)
	for i := 0; i < b.N; i++ {
		res, err := root.Synthesize(src, root.SynthConfig{Seed: int64(i + 1), MaxMoves: 4000})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Variables()
	}
}

// BenchmarkTable3NovelFC runs a short novel-folded-cascode synthesis —
// Table 3's automatic re-synthesis at miniature scale.
func BenchmarkTable3NovelFC(b *testing.B) {
	src := bench.DeckSource(bench.NovelFC)
	for i := 0; i < b.N; i++ {
		if _, err := root.Synthesize(src, root.SynthConfig{Seed: int64(i + 1), MaxMoves: 3000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Trace measures a traced annealing run (the Fig. 2
// instrumentation overhead included).
func BenchmarkFig2Trace(b *testing.B) {
	d, err := bench.Parse(bench.SimpleOTA)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := oblx.Run(context.Background(), d, oblx.Options{
			Seed: int64(i + 1), MaxMoves: 4000, RecordTrace: true, TraceEvery: 200,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Baselines measures the equation-based baseline: design
// procedure plus reference-simulator evaluation (the "prior approach"
// point of Fig. 3).
func BenchmarkFig3Baselines(b *testing.B) {
	p, err := eqbase.ExtractSquareLaw("c2u")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		d, err := eqbase.DesignOTA(eqbase.Targets{GBWHz: 20e6, SR: 15e6, CL: 1e-12}, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eqbase.Evaluate(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelComparison measures one arm of experiment E6 (BSIM/1.2µ
// short synthesis).
func BenchmarkModelComparison(b *testing.B) {
	src := bench.SimpleOTASource("c1.2u", "nbsim", "pbsim")
	for i := 0; i < b.N; i++ {
		if _, err := root.Synthesize(src, root.SynthConfig{Seed: int64(i + 1), MaxMoves: 3000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAWEvsAC / BenchmarkACSweep: experiment E7's two sides on a
// 40-node RC ladder. The ratio of these two benches is the paper's
// "orders of magnitude faster than SPICE" claim.
func BenchmarkAWEvsAC(b *testing.B) {
	nl := ckttest.RCLadder(40, 1e3, 1e-9)
	sys, err := mna.Build(nl, expr.MapEnv{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := awe.NewAnalyzer(sys)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := an.TransferFunction("vin", "n40", "", 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkACSweep is the 200-point direct sweep E7 compares against.
func BenchmarkACSweep(b *testing.B) {
	nl := ckttest.RCLadder(40, 1e3, 1e-9)
	sys, err := mna.Build(nl, expr.MapEnv{})
	if err != nil {
		b.Fatal(err)
	}
	an := acsim.NewAnalyzer(sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.LogSweep("vin", "n40", "", 1e3, 1e9, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewtonBias measures the reference Newton bias solve used by
// both the NR annealing moves and the verifier.
func BenchmarkNewtonBias(b *testing.B) {
	comp, err := bench.Compile(bench.SimpleOTA)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, len(comp.Vars()))
	for i, v := range comp.Vars() {
		x[i] = v.Start()
	}
	p := comp.DCProblem(x)
	v0 := make([]float64, p.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dcsolve.Solve(context.Background(), p, v0, dcsolve.Options{GminSteps: 6, MaxIter: 200}); err != nil {
			b.Fatal(err)
		}
	}
}
