package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: astrx
BenchmarkTable2EvalSimpleOTA-8   	    2500	    452103 ns/op	     128 B/op	       3 allocs/op
BenchmarkTable2EvalOTA-8         	    1800	    612402.5 ns/op
BenchmarkTable1Compile-8         	     300	   3921034 ns/op
PASS
ok  	astrx	12.345s
`

const metricSample = `BenchmarkTable2EvalBiCMOS-8 	    2496	     85356 ns/op	       243.0 fill_nnz	       243.0 mna_nnz	        28.00 mna_rows	         1.000 sparse	       0 B/op	       0 allocs/op
`

func TestParseMetrics(t *testing.T) {
	entries, err := parse(strings.NewReader(metricSample), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d entries, want 1: %+v", len(entries), entries)
	}
	e := entries[0]
	if e.NsPerEval != 85356 {
		t.Errorf("ns/eval = %g, want 85356", e.NsPerEval)
	}
	if e.BytesPerEval == nil || *e.BytesPerEval != 0 || e.AllocsPerEval == nil || *e.AllocsPerEval != 0 {
		t.Errorf("memory columns lost around custom metrics: %+v", e)
	}
	want := map[string]float64{"fill_nnz": 243, "mna_nnz": 243, "mna_rows": 28, "sparse": 1}
	for k, v := range want {
		if e.Metrics[k] != v {
			t.Errorf("metric %s = %g, want %g", k, e.Metrics[k], v)
		}
	}
	if len(e.Metrics) != len(want) {
		t.Errorf("extra metrics parsed: %v", e.Metrics)
	}
}

func TestCheckSparseFraction(t *testing.T) {
	baseline := Report{Entries: []Entry{
		{Name: "Table2EvalOTA", NsPerEval: 100000, Metrics: map[string]float64{"sparse": 1}},
	}}
	entries := []Entry{
		{Name: "Table2EvalOTA", NsPerEval: 100000, Metrics: map[string]float64{"sparse": 0.5}},
	}
	problems := check(baseline, entries, 0.15)
	if len(problems) != 1 || !strings.Contains(problems[0], "sparse-path fraction") {
		t.Fatalf("sparse fraction drop not flagged: %v", problems)
	}
	entries[0].Metrics["sparse"] = 1
	if got := check(baseline, entries, 0.15); len(got) != 0 {
		t.Errorf("matching sparse fraction flagged: %v", got)
	}
}

func TestParse(t *testing.T) {
	entries, err := parse(strings.NewReader(sample), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3: %+v", len(entries), entries)
	}
	e := entries[0]
	if e.Name != "Table2EvalSimpleOTA" || e.Iterations != 2500 || e.NsPerEval != 452103 {
		t.Errorf("first entry wrong: %+v", e)
	}
	wantRate := 1e9 / 452103
	if diff := e.EvalsPerSec - wantRate; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("evals/sec %g, want %g", e.EvalsPerSec, wantRate)
	}
	if e.BytesPerEval == nil || *e.BytesPerEval != 128 {
		t.Errorf("bytes/eval = %v, want 128", e.BytesPerEval)
	}
	if e.AllocsPerEval == nil || *e.AllocsPerEval != 3 {
		t.Errorf("allocs/eval = %v, want 3", e.AllocsPerEval)
	}
	// Without -benchmem columns the memory fields stay absent.
	if entries[1].BytesPerEval != nil || entries[1].AllocsPerEval != nil {
		t.Errorf("entry without memory columns got %v / %v", entries[1].BytesPerEval, entries[1].AllocsPerEval)
	}
}

func TestCheck(t *testing.T) {
	baseline := Report{Entries: []Entry{
		{Name: "Table2EvalSimpleOTA", NsPerEval: 100000},
		{Name: "Table2EvalOTA", NsPerEval: 200000},
		{Name: "Table2EvalGone", NsPerEval: 300000},
	}}
	entries := []Entry{
		{Name: "Table2EvalSimpleOTA", NsPerEval: 110000}, // +10%: within budget
		{Name: "Table2EvalOTA", NsPerEval: 260000},       // +30%: regression
	}
	problems := check(baseline, entries, 0.15)
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want 2: %v", len(problems), problems)
	}
	if !strings.Contains(problems[0], "Table2EvalOTA") && !strings.Contains(problems[1], "Table2EvalOTA") {
		t.Errorf("regression on Table2EvalOTA not reported: %v", problems)
	}
	if !strings.Contains(strings.Join(problems, "\n"), "missing") {
		t.Errorf("missing benchmark not reported: %v", problems)
	}
	if got := check(baseline, entries, 0.5); len(got) != 1 {
		t.Errorf("with 50%% budget only the missing entry should remain: %v", got)
	}
}

func TestCheckAllocs(t *testing.T) {
	zero, one := int64(0), int64(1)
	baseline := Report{Entries: []Entry{
		{Name: "Table2EvalSimpleOTA", NsPerEval: 100000, AllocsPerEval: &zero},
		{Name: "Table2EvalOTA", NsPerEval: 200000}, // no memory columns in baseline
	}}
	entries := []Entry{
		{Name: "Table2EvalSimpleOTA", NsPerEval: 100000, AllocsPerEval: &one},
		{Name: "Table2EvalOTA", NsPerEval: 200000, AllocsPerEval: &one},
	}
	problems := check(baseline, entries, 0.15)
	if len(problems) != 1 {
		t.Fatalf("got %d problems, want 1 (alloc regression only): %v", len(problems), problems)
	}
	if !strings.Contains(problems[0], "1 allocs/eval exceeds baseline 0") {
		t.Errorf("alloc regression not reported as such: %v", problems)
	}

	// Matching alloc counts pass.
	entries[0].AllocsPerEval = &zero
	if got := check(baseline, entries, 0.15); len(got) != 0 {
		t.Errorf("matching allocs flagged: %v", got)
	}
}

func TestParseFilter(t *testing.T) {
	entries, err := parse(strings.NewReader(sample), "Table2Eval")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("filtered: got %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		if !strings.Contains(e.Name, "Table2Eval") {
			t.Errorf("filter leaked %q", e.Name)
		}
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	entries, err := parse(strings.NewReader("nothing here\nPASS\n"), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("noise produced entries: %+v", entries)
	}
}
