package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: astrx
BenchmarkTable2EvalSimpleOTA-8   	    2500	    452103 ns/op
BenchmarkTable2EvalOTA-8         	    1800	    612402.5 ns/op
BenchmarkTable1Compile-8         	     300	   3921034 ns/op
PASS
ok  	astrx	12.345s
`

func TestParse(t *testing.T) {
	entries, err := parse(strings.NewReader(sample), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3: %+v", len(entries), entries)
	}
	e := entries[0]
	if e.Name != "Table2EvalSimpleOTA" || e.Iterations != 2500 || e.NsPerEval != 452103 {
		t.Errorf("first entry wrong: %+v", e)
	}
	wantRate := 1e9 / 452103
	if diff := e.EvalsPerSec - wantRate; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("evals/sec %g, want %g", e.EvalsPerSec, wantRate)
	}
}

func TestParseFilter(t *testing.T) {
	entries, err := parse(strings.NewReader(sample), "Table2Eval")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("filtered: got %d entries, want 2", len(entries))
	}
	for _, e := range entries {
		if !strings.Contains(e.Name, "Table2Eval") {
			t.Errorf("filter leaked %q", e.Name)
		}
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	entries, err := parse(strings.NewReader("nothing here\nPASS\n"), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("noise produced entries: %+v", entries)
	}
}
