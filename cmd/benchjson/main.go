// Command benchjson converts `go test -bench` output into a JSON
// summary of evaluation throughput, for tracking the paper's Table 2
// "time/ckt evaluation" figure across commits:
//
//	go test -run '^$' -bench Table2Eval . | benchjson -out BENCH_oblx.json
//
// Each Table2Eval benchmark iteration is one cost-function evaluation,
// so the reported ns/op is directly ns per evaluation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark's throughput summary.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerEval   float64 `json:"ns_per_eval"`
	EvalsPerSec float64 `json:"evals_per_sec"`
}

// Report is the whole output file.
type Report struct {
	Source  string  `json:"source"` // the benchmark filter these entries came from
	Entries []Entry `json:"entries"`
}

// benchLine matches standard go-test benchmark result lines:
//
//	BenchmarkTable2EvalSimpleOTA-8   2500   452000 ns/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

func parse(r io.Reader, filter string) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		if filter != "" && !strings.Contains(name, filter) {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", sc.Text(), err)
		}
		e := Entry{Name: name, Iterations: iters, NsPerEval: ns}
		if ns > 0 {
			e.EvalsPerSec = 1e9 / ns
		}
		entries = append(entries, e)
	}
	return entries, sc.Err()
}

func main() {
	out := flag.String("out", "", "write JSON here (default stdout)")
	filter := flag.String("filter", "", "keep only benchmarks whose name contains this substring")
	flag.Parse()

	entries, err := parse(os.Stdin, *filter)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	rep := Report{Source: "go test -bench", Entries: entries}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d entries to %s\n", len(entries), *out)
}
