// Command benchjson converts `go test -bench` output into a JSON
// summary of evaluation throughput, for tracking the paper's Table 2
// "time/ckt evaluation" figure across commits:
//
//	go test -run '^$' -bench Table2Eval -benchmem . | benchjson -out BENCH_oblx.json
//
// Each Table2Eval benchmark iteration is one cost-function evaluation,
// so the reported ns/op is directly ns per evaluation; with -benchmem
// the bytes/allocs per evaluation are captured too.
//
// With -check FILE the parsed results are compared against a previously
// recorded baseline instead of being written out: the command exits
// nonzero when any benchmark's ns/eval regressed by more than
// -max-regress (default 0.15, i.e. 15%) relative to the baseline, when
// a baseline entry is missing from the new run, or when allocs/eval
// exceeds the baseline. The alloc comparison is exact, not fractional:
// the hot path is supposed to be allocation-free, and going from 0 to 1
// alloc per evaluation is the regression the guard exists to catch.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark's throughput summary.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerEval   float64 `json:"ns_per_eval"`
	EvalsPerSec float64 `json:"evals_per_sec"`
	// BytesPerEval and AllocsPerEval are present when the run used
	// -benchmem; they track the hot path's steady-state heap traffic.
	BytesPerEval  *float64 `json:"bytes_per_eval,omitempty"`
	AllocsPerEval *int64   `json:"allocs_per_eval,omitempty"`
	// NsPerCornerEval is derived for worst-case benchmarks that report a
	// `corners` metric: ns/op divided by the lane count, i.e. the cost of
	// one corner's evaluation — directly comparable to the single-lane
	// ns_per_eval of the nominal Table 2 rows.
	NsPerCornerEval float64 `json:"ns_per_corner_eval,omitempty"`
	// Metrics holds any custom b.ReportMetric values the benchmark
	// emitted. The eval benchmarks report the deck's matrix shape:
	// mna_rows (dimension of the largest jig system), mna_nnz
	// (structural nonzeros across jigs), fill_nnz (factor nonzeros
	// including fill-in), and sparse (fraction of jig factorizations on
	// the sparse replay path; 1 = fully sparse, 0 = dense fallback) —
	// and, for the corner benchmarks, corners (lanes per evaluation).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole output file.
type Report struct {
	Source  string  `json:"source"` // the benchmark filter these entries came from
	Entries []Entry `json:"entries"`
}

// benchLine matches standard go-test benchmark result lines. Custom
// b.ReportMetric columns land between ns/op and the -benchmem pair
// (go sorts them by unit name), so everything after ns/op is captured
// and parsed as value/unit pairs:
//
//	BenchmarkTable2EvalSimpleOTA-8   2500   452000 ns/op   74 mna_nnz   1.000 sparse   128 B/op   3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op((?:\s+\S+ \S+)*)\s*$`)

// metricPair matches one "value unit" column of the post-ns/op tail.
var metricPair = regexp.MustCompile(`(\S+) (\S+)`)

func parse(r io.Reader, filter string) ([]Entry, error) {
	var entries []Entry
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		if filter != "" && !strings.Contains(name, filter) {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", sc.Text(), err)
		}
		e := Entry{Name: name, Iterations: iters, NsPerEval: ns}
		if ns > 0 {
			e.EvalsPerSec = 1e9 / ns
		}
		for _, pair := range metricPair.FindAllStringSubmatch(m[4], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad metric value in %q: %w", sc.Text(), err)
			}
			switch unit := pair[2]; unit {
			case "B/op":
				e.BytesPerEval = &v
			case "allocs/op":
				allocs := int64(v)
				e.AllocsPerEval = &allocs
			default:
				if e.Metrics == nil {
					e.Metrics = make(map[string]float64)
				}
				e.Metrics[unit] = v
			}
		}
		if k := e.Metrics["corners"]; k > 0 {
			e.NsPerCornerEval = e.NsPerEval / k
		}
		entries = append(entries, e)
	}
	return entries, sc.Err()
}

// check compares entries against the baseline report and returns one
// line per problem; an empty result means the run is within budget.
func check(baseline Report, entries []Entry, maxRegress float64) []string {
	byName := make(map[string]Entry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	var problems []string
	for _, base := range baseline.Entries {
		got, ok := byName[base.Name]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from this run", base.Name))
			continue
		}
		// Alloc counts gate exactly: 0 allocs/eval is the contract, so any
		// increase is a hot-path regression regardless of percentage.
		if base.AllocsPerEval != nil && got.AllocsPerEval != nil &&
			*got.AllocsPerEval > *base.AllocsPerEval {
			problems = append(problems, fmt.Sprintf(
				"%s: %d allocs/eval exceeds baseline %d",
				base.Name, *got.AllocsPerEval, *base.AllocsPerEval))
		}
		// The sparse fraction gates downward moves: a deck falling off the
		// sparse factorization path is a perf cliff even when the wall
		// clock hasn't crossed the ns/eval budget yet.
		if baseSparse, ok := base.Metrics["sparse"]; ok {
			if gotSparse, ok := got.Metrics["sparse"]; ok && gotSparse < baseSparse {
				problems = append(problems, fmt.Sprintf(
					"%s: sparse-path fraction %.2f below baseline %.2f",
					base.Name, gotSparse, baseSparse))
			}
		}
		if base.NsPerEval <= 0 {
			continue
		}
		limit := base.NsPerEval * (1 + maxRegress)
		if got.NsPerEval > limit {
			problems = append(problems, fmt.Sprintf(
				"%s: %.0f ns/eval exceeds baseline %.0f by %.1f%% (budget %.0f%%)",
				base.Name, got.NsPerEval, base.NsPerEval,
				100*(got.NsPerEval/base.NsPerEval-1), 100*maxRegress))
		}
	}
	return problems
}

func main() {
	out := flag.String("out", "", "write JSON here (default stdout)")
	filter := flag.String("filter", "", "keep only benchmarks whose name contains this substring")
	checkFile := flag.String("check", "", "compare against this baseline JSON instead of writing output")
	maxRegress := flag.Float64("max-regress", 0.15, "with -check: allowed fractional ns/eval regression")
	flag.Parse()

	entries, err := parse(os.Stdin, *filter)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	if *checkFile != "" {
		data, err := os.ReadFile(*checkFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var baseline Report
		if err := json.Unmarshal(data, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad baseline %s: %v\n", *checkFile, err)
			os.Exit(1)
		}
		problems := check(baseline, entries, *maxRegress)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", p)
			}
			os.Exit(1)
		}
		fmt.Printf("benchjson: %d benchmarks within %.0f%% of %s\n",
			len(baseline.Entries), 100**maxRegress, *checkFile)
		return
	}
	rep := Report{Source: "go test -bench", Entries: entries}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d entries to %s\n", len(entries), *out)
}
