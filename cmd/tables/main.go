// Command tables regenerates every table and figure of the paper's
// evaluation section (see EXPERIMENTS.md for the experiment index).
//
// Usage:
//
//	tables -table 1                 # ASTRX analyses (fast, no synthesis)
//	tables -table 2 -moves 120000   # synthesis results, Table-2 suite
//	tables -table 3                 # novel folded cascode vs manual
//	tables -fig 2                   # KCL discrepancy trace
//	tables -fig 3                   # effort/error scatter
//	tables -exp models              # E6 model/process comparison
//	tables -exp awe                 # E7 AWE scaling
//	tables -all                     # everything (long)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"astrx/internal/bench"
	"astrx/internal/eqbase"
)

func main() {
	table := flag.Int("table", 0, "regenerate a table (1, 2, or 3)")
	fig := flag.Int("fig", 0, "regenerate a figure (2 or 3)")
	exp := flag.String("exp", "", "run an extra experiment: models, awe")
	all := flag.Bool("all", false, "regenerate everything")
	moves := flag.Int("moves", 120_000, "annealing move budget per run")
	runs := flag.Int("runs", 2, "independent runs per synthesis (best kept)")
	seed := flag.Int64("seed", 1, "base random seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := bench.SynthOptions{Seed: *seed, MaxMoves: *moves, Runs: *runs}
	did := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}

	if *all || *table == 1 {
		did = true
		rows, err := bench.Table1()
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable1(rows))
	}
	if *all || *table == 2 {
		did = true
		rs, err := bench.Table2(ctx, opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable2(rs))
	}
	if *all || *table == 3 {
		did = true
		res, err := bench.Table3(ctx, opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatTable3(res))
	}
	if *all || *fig == 2 {
		did = true
		trace, err := bench.Fig2(ctx, opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatFig2(trace))
	}
	if *all || *fig == 3 {
		did = true
		pts, err := runFig3(ctx, opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatFig3(pts))
	}
	if *all || *exp == "models" {
		did = true
		rs, err := bench.ModelComparison(ctx, opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatModelComparison(rs))
	}
	if *all || *exp == "awe" {
		did = true
		pts, err := bench.AWEScaling(nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench.FormatAWEScaling(pts))
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}

// runFig3 measures the two live Fig. 3 points (eqbase and ASTRX/OBLX on
// the Simple OTA) and merges them with the literature cluster.
func runFig3(ctx context.Context, opt bench.SynthOptions) ([]bench.Fig3Point, error) {
	// Equation-based point: design + evaluate, timing the "tool" part.
	proc, err := eqbase.ExtractSquareLaw("c2u")
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	d, err := eqbase.DesignOTA(eqbase.Targets{GBWHz: 20e6, SR: 15e6, CL: 1e-12}, proc)
	if err != nil {
		return nil, err
	}
	ev, err := eqbase.Evaluate(d)
	if err != nil {
		return nil, err
	}
	eqCPU := time.Since(t0)
	// 1000 lines ≈ 1 month ≈ 170 h (the paper's own conversion).
	eqPrepHours := float64(eqbase.EquationLines) / 1000.0 * 170.0

	// ASTRX/OBLX point on the same circuit.
	res, err := bench.Synthesize(ctx, bench.SimpleOTA, opt)
	if err != nil {
		return nil, err
	}
	deckPrep, err := bench.DeckPrepHours(bench.SimpleOTA)
	if err != nil {
		return nil, err
	}
	comp := res.Run.Compiled
	complexity := len(comp.Bias.DevOrder) + comp.NUser

	return bench.Fig3(opt,
		eqPrepHours, deckPrep,
		ev.WorstErr*100, eqCPU,
		res.Report.WorstRelErr*100, res.Run.Duration,
		complexity), nil
}
