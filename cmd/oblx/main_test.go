package main

import (
	"io/fs"
	"os"
	"strings"
	"testing"
)

func statExists(string) (os.FileInfo, error)  { return nil, nil }
func statMissing(string) (os.FileInfo, error) { return nil, fs.ErrNotExist }

func TestFlagProblems(t *testing.T) {
	cases := []struct {
		name            string
		moves, runs, ce int
		ss              int
		ckpt            string
		resume          bool
		stat            func(string) (os.FileInfo, error)
		wantSubs        []string
	}{
		{
			name:  "all defaults fine",
			moves: 120_000, runs: 1, ce: 5000,
			stat: statExists,
		},
		{
			name:  "zero runs",
			moves: 1000, runs: 0, ce: 5000,
			stat:     statExists,
			wantSubs: []string{"-runs must be >= 1"},
		},
		{
			name:  "negative moves",
			moves: -5, runs: 1, ce: 5000,
			stat:     statExists,
			wantSubs: []string{"-moves must be >= 1"},
		},
		{
			name:  "negative checkpoint interval",
			moves: 1000, runs: 1, ce: -1,
			stat:     statExists,
			wantSubs: []string{"-checkpoint-every must be >= 0"},
		},
		{
			name:  "resume without checkpoint",
			moves: 1000, runs: 1, ce: 5000,
			resume:   true,
			stat:     statExists,
			wantSubs: []string{"-resume requires -checkpoint"},
		},
		{
			name:  "resume with missing file",
			moves: 1000, runs: 1, ce: 5000,
			ckpt: "run.ckpt", resume: true,
			stat:     statMissing,
			wantSubs: []string{`"run.ckpt" does not exist`},
		},
		{
			name:  "resume with multiple runs",
			moves: 1000, runs: 4, ce: 5000,
			ckpt: "run.ckpt", resume: true,
			stat:     statExists,
			wantSubs: []string{"single-run feature"},
		},
		{
			name:  "negative stage sample",
			moves: 1000, runs: 1, ce: 5000, ss: -3,
			stat:     statExists,
			wantSubs: []string{"-stage-sample must be >= 0"},
		},
		{
			name:  "several problems reported together",
			moves: 0, runs: -2, ce: -7,
			stat: statExists,
			wantSubs: []string{
				"-moves must be >= 1",
				"-runs must be >= 1",
				"-checkpoint-every must be >= 0",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			probs := flagProblems(tc.moves, tc.runs, tc.ce, tc.ss, tc.ckpt, tc.resume, tc.stat)
			if len(tc.wantSubs) == 0 {
				if len(probs) != 0 {
					t.Fatalf("unexpected problems: %v", probs)
				}
				return
			}
			joined := strings.Join(probs, "\n")
			for _, want := range tc.wantSubs {
				if !strings.Contains(joined, want) {
					t.Errorf("problems %q missing %q", joined, want)
				}
			}
			if len(probs) != len(tc.wantSubs) {
				t.Errorf("got %d problems %q, want %d", len(probs), joined, len(tc.wantSubs))
			}
		})
	}
}
