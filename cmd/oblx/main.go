// Command oblx synthesizes a circuit from an ASTRX deck: it compiles the
// problem, anneals (optionally several parallel seeded runs, keeping the
// best — the paper's "5-10 annealing runs performed overnight"), then
// verifies the winner against the reference simulator and prints the
// spec-by-spec "OBLX / Simulation" comparison.
//
// Long runs are interruptible: Ctrl-C (or -timeout) stops the annealing
// and reports the best design found so far, and -checkpoint/-resume make
// a run survive process death without losing progress.
//
// Usage:
//
//	oblx [-moves N] [-runs K] [-seed S] <deck-file>
//	oblx -bench "Simple OTA" -moves 120000 -runs 4
//	oblx -bench "Simple OTA" -checkpoint run.ckpt        # interruptible
//	oblx -bench "Simple OTA" -checkpoint run.ckpt -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"astrx/internal/bench"
	"astrx/internal/faults"
	"astrx/internal/metrics"
	"astrx/internal/netlist"
	"astrx/internal/oblx"
	"astrx/internal/telemetry"
	"astrx/internal/trace"
	"astrx/internal/verify"
)

// flagProblems collects every flag-validation error at once so a typo'd
// invocation gets one complete diagnosis instead of a fail-fix-fail
// loop. statFn is os.Stat in production, injectable for tests.
func flagProblems(moves, runs, ckptEvery, stageSample int, ckptPath string, resume bool,
	statFn func(string) (os.FileInfo, error)) []string {
	var probs []string
	if moves < 1 {
		probs = append(probs, fmt.Sprintf("-moves must be >= 1 (got %d)", moves))
	}
	if runs < 1 {
		probs = append(probs, fmt.Sprintf("-runs must be >= 1 (got %d)", runs))
	}
	if ckptEvery < 0 {
		probs = append(probs, fmt.Sprintf("-checkpoint-every must be >= 0 (got %d)", ckptEvery))
	}
	if stageSample < 0 {
		probs = append(probs, fmt.Sprintf("-stage-sample must be >= 0 (got %d)", stageSample))
	}
	if resume {
		switch {
		case ckptPath == "":
			probs = append(probs, "-resume requires -checkpoint")
		default:
			if _, err := statFn(ckptPath); err != nil {
				probs = append(probs, fmt.Sprintf("-resume: checkpoint file %q does not exist (%v)", ckptPath, err))
			}
		}
		if runs > 1 {
			probs = append(probs, "-resume is a single-run feature; drop -runs")
		}
	}
	return probs
}

// parseCornersFlag maps the -corners flag value onto the SelectCorners
// convention: "" and "all" select every declared corner (nil), "none"
// forces nominal-only (empty non-nil), anything else is a name list.
func parseCornersFlag(v string) []string {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "", "all":
		return nil
	case "none":
		return []string{}
	}
	var out []string
	for _, n := range strings.Split(v, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func main() {
	benchName := flag.String("bench", "", "synthesize a builtin benchmark")
	moves := flag.Int("moves", 120_000, "annealing move budget per run")
	runs := flag.Int("runs", 1, "independent seeded runs (best kept)")
	seed := flag.Int64("seed", 1, "base random seed")
	timeout := flag.Duration("timeout", 0, "abort after this long, keeping the best design so far")
	ckptPath := flag.String("checkpoint", "", "write a resumable state snapshot to this file")
	ckptEvery := flag.Int("checkpoint-every", 5000, "moves between checkpoint writes")
	resume := flag.Bool("resume", false, "resume from the -checkpoint file instead of starting fresh")
	noFreeze := flag.Bool("no-freeze", false, "disable the freezing criterion (consume the full move budget)")
	faultPanic := flag.Float64("fault-panic", 0, "inject evaluator panics at this rate (testing)")
	faultNaN := flag.Float64("fault-nan", 0, "inject NaN costs at this rate (testing)")
	faultNewton := flag.Float64("fault-newton", 0, "inject Newton non-convergence at this rate (testing)")
	cornersFlag := flag.String("corners", "", `corners to synthesize against: comma-separated .corner names, "all" (default for cornered decks), or "none" for nominal-only`)
	faultCorner := flag.String("fault-corner", "", "permanently fail this corner's evaluations (chaos testing)")
	showMetrics := flag.Bool("metrics", false, "print a run-metrics summary (Prometheus text format) at exit")
	traceOut := flag.String("trace-out", "", "write a flight-recorder trace (one JSON move record per line) to this file")
	traceEvery := flag.Int("trace-every", 100, "moves between trace records (with -trace-out)")
	traceSpans := flag.String("trace-spans", "", "write the run's distributed-trace spans (JSONL: snapshot header + one span per line) to this file")
	stageSample := flag.Int("stage-sample", 0, "sample 1 in N evaluations for per-stage timing, printed at exit (0: off)")
	hashOnly := flag.Bool("hash", false, "print the deck's canonical content hash (the oblxd result-cache key input) and exit")
	flag.Parse()

	if probs := flagProblems(*moves, *runs, *ckptEvery, *stageSample, *ckptPath, *resume, os.Stat); len(probs) > 0 {
		for _, p := range probs {
			fmt.Fprintln(os.Stderr, "oblx:", p)
		}
		fmt.Fprintln(os.Stderr, "usage: oblx [-bench name | deck-file] [-moves N] [-runs K] [-seed S] [-timeout D] [-checkpoint F [-resume]]")
		os.Exit(2)
	}

	var src, title string
	switch {
	case *benchName != "":
		ok := false
		for _, c := range bench.Suite {
			if string(c) == *benchName {
				src, title, ok = bench.DeckSource(c), *benchName, true
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "oblx: unknown benchmark %q\n", *benchName)
			os.Exit(1)
		}
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "oblx:", err)
			os.Exit(1)
		}
		src, title = string(data), flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: oblx [-bench name | deck-file] [-moves N] [-runs K] [-seed S] [-timeout D] [-checkpoint F [-resume]]")
		os.Exit(2)
	}

	if *hashOnly {
		h, err := netlist.CanonicalHash(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oblx:", err)
			os.Exit(1)
		}
		fmt.Println(h)
		return
	}

	deck, err := netlist.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oblx:", err)
		os.Exit(1)
	}
	if err := deck.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "oblx: deck failed validation:")
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// SIGINT/SIGTERM cancel the run; the annealer returns best-so-far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opt := oblx.Options{
		Seed:            *seed,
		MaxMoves:        *moves,
		NoFreeze:        *noFreeze,
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		Corners:         parseCornersFlag(*cornersFlag),
	}
	var timer *telemetry.EvalTimer
	if *stageSample > 0 {
		timer = telemetry.NewEvalTimer(*stageSample)
		opt.StageTimer = timer
	}
	// -trace-spans records the run as one span tree — the same spans
	// oblxd serves at GET /v1/jobs/{id}/trace, produced offline. Eval
	// spans ride on the -stage-sample cadence; without it the trace
	// holds the lifecycle spans (root, anneal, corners) only.
	var spanRec *trace.Recorder
	var rootSpan *trace.Active
	if *traceSpans != "" {
		tid := trace.TraceIDFromRequest("")
		spanRec = trace.NewRecorder(trace.Context{TraceID: tid, SpanID: trace.RootSpanID(tid)}, *moves)
		opt.Trace = spanRec
		rootSpan = spanRec.BeginRoot("oblx", "")
		rootSpan.SetAttr("deck", title)
		if timer != nil {
			timer.OnSample(func(s telemetry.Stage, d time.Duration) {
				spanRec.RecordEval(s.String(), d)
			})
		}
	}
	var flight *telemetry.FlightRecorder
	if *traceOut != "" {
		// Record every progress event into an unbounded-enough ring; the
		// CLI trace is the whole run, not just the last moves.
		every := *traceEvery
		if every < 1 {
			every = 100
		}
		flight = telemetry.NewFlightRecorder((*moves/every + 16) * *runs)
		opt.ProgressEvery = every
		opt.Progress = func(ev oblx.ProgressEvent) {
			flight.Record(ev.FlightRecord())
		}
	}
	if *faultPanic > 0 || *faultNaN > 0 || *faultNewton > 0 || *faultCorner != "" {
		rates := faults.Rates{
			EvalPanic: *faultPanic, NaNCost: *faultNaN, NewtonFail: *faultNewton,
		}
		if *faultCorner != "" {
			rates.CornerFail, rates.FailCorner = 1, *faultCorner
		}
		opt.Faults = faults.New(*seed+997, rates)
	}
	if *resume {
		ck, err := oblx.LoadCheckpoint(*ckptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oblx:", err)
			os.Exit(1)
		}
		opt.Resume = ck
		fmt.Printf("resuming from %s (move %d of %d)\n", *ckptPath, ck.Anneal.Move, ck.MaxMoves)
	}

	// The trace is most valuable when the run dies, so it is written on
	// the error exits too, not just after a clean finish. The span dump
	// follows the same rule: end the root with the outcome, then write.
	dumpTrace := func(status string) {
		if flight != nil {
			if err := writeTrace(*traceOut, flight); err != nil {
				fmt.Fprintln(os.Stderr, "oblx: warning:", err)
			}
		}
		if spanRec != nil {
			rootSpan.End(status)
			if err := writeSpans(*traceSpans, title, status, spanRec); err != nil {
				fmt.Fprintln(os.Stderr, "oblx: warning:", err)
			}
		}
	}

	var best *oblx.Result
	if *runs <= 1 {
		best, err = oblx.Run(ctx, deck, opt)
		if err != nil {
			dumpTrace("error")
			fmt.Fprintln(os.Stderr, "oblx:", err)
			os.Exit(1)
		}
	} else {
		var errs []error
		best, _, errs = oblx.RunBest(ctx, deck, *runs, opt)
		for i, e := range errs {
			if e != nil {
				fmt.Fprintf(os.Stderr, "oblx: warning: run %d failed: %v\n", i, e)
			}
		}
		if best == nil {
			dumpTrace("error")
			fmt.Fprintln(os.Stderr, "oblx: all runs failed")
			os.Exit(1)
		}
	}
	switch {
	case best.Cancelled:
		dumpTrace("cancelled")
	default:
		dumpTrace("ok")
	}

	fmt.Printf("OBLX synthesis of %s (seed %d, %d moves", title, best.Seed, best.Moves)
	if best.Froze {
		fmt.Printf(", froze early")
	}
	if best.Cancelled {
		fmt.Printf(", CANCELLED — best-so-far design")
	}
	fmt.Printf(")\n")
	fmt.Printf("  cost: obj %.4g, perf %.4g, dev %.4g, dc %.4g (total %.4g)\n",
		best.Cost.Objective, best.Cost.Perf, best.Cost.Dev, best.Cost.DC, best.Cost.Total)
	if best.EvalCount > 0 {
		fmt.Printf("  time/ckt eval: %v; CPU/run: %v (%d evaluations)\n",
			best.TimePerEval().Round(time.Microsecond), best.Duration.Round(time.Millisecond), best.EvalCount)
	} else {
		fmt.Printf("  time/ckt eval: n/a (no evaluations ran); CPU/run: %v\n",
			best.Duration.Round(time.Millisecond))
	}
	if f := best.Failures; f.Total() > 0 {
		fmt.Printf("  failures absorbed: %d panics recovered, %d non-finite costs, %d retries, %d quarantined, %d moves rejected\n",
			f.PanicsRecovered, f.NonFiniteCosts, f.Retries, f.Quarantined, f.RejectedMoves)
	}
	if best.CheckpointErr != nil {
		fmt.Fprintf(os.Stderr, "oblx: warning: checkpoint writes failed: %v\n", best.CheckpointErr)
	}
	if len(best.Corners) > 0 {
		if best.Degraded {
			fmt.Println("  DEGRADED: at least one corner was quarantined; the design is worst-case optimal over the surviving corners only")
		}
		fmt.Println("  corners (worst-case synthesis):")
		for _, cr := range best.Corners {
			status := "all specs met"
			switch {
			case cr.Quarantined:
				status = fmt.Sprintf("QUARANTINED after %d failures (%d retries)", cr.Fails, cr.Retries)
			case !cr.Evaluated:
				status = "final evaluation FAILED"
			case !cr.AllMet:
				status = "specs NOT met"
			}
			dc := ""
			if cr.Evaluated && !cr.DCSolved {
				dc = ", bias not dc-solved"
			}
			fmt.Printf("    %-10s %s%s\n", cr.Name, status, dc)
		}
	}
	fmt.Println("  design variables:")
	for i := 0; i < best.Compiled.NUser; i++ {
		fmt.Printf("    %-10s = %.5g\n", best.Compiled.Vars()[i].Name, best.X[i])
	}

	rep, err := verify.Design(best.Compiled, best.X, best.State.SpecVals)
	if err != nil {
		// A cancelled run's half-annealed point may not verify; that is a
		// caveat on the partial result, not a failure of the command.
		if best.Cancelled {
			fmt.Fprintln(os.Stderr, "oblx: warning: best-so-far design did not verify:", err)
			return
		}
		fmt.Fprintln(os.Stderr, "oblx: verification:", err)
		os.Exit(1)
	}
	fmt.Println("  specification           OBLX        / Simulation   (relerr)")
	for _, row := range rep.Specs {
		met := "met"
		if !row.Met {
			met = "NOT MET"
			if row.Objective {
				met = "objective"
			}
		}
		fmt.Printf("    %-10s %14.6g / %-14.6g (%.2g)  %s\n",
			row.Name, row.Predicted, row.Simulated, row.RelErr, met)
	}
	fmt.Printf("  reference bias: %d Newton iterations, max |KCL| %.3g A\n",
		rep.BiasIterations, rep.MaxKCL)

	if timer != nil {
		printStages(timer)
	}
	if *showMetrics {
		printMetrics(best)
	}
}

// writeTrace dumps the flight-recorder ring to path as JSONL, one move
// record per line, oldest first.
func writeTrace(path string, flight *telemetry.FlightRecorder) error {
	recs := flight.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := telemetry.WriteJSONL(f, recs); err != nil {
		f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	fmt.Fprintf(os.Stderr, "oblx: wrote %d trace records to %s\n", len(recs), path)
	return nil
}

// writeSpans dumps the recorder's span tree to path in the same JSONL
// snapshot format oblxd seals to its state dir (header line, then one
// span per line).
func writeSpans(path, label, cause string, rec *trace.Recorder) error {
	spans := rec.Snapshot()
	data, err := trace.EncodeSnapshot(trace.SnapshotHeader{
		TraceID: rec.TraceID(),
		Label:   label,
		Cause:   cause,
		Time:    time.Now(),
		Dropped: rec.Dropped(),
	}, spans)
	if err != nil {
		return fmt.Errorf("trace spans: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("trace spans: %w", err)
	}
	fmt.Fprintf(os.Stderr, "oblx: wrote %d trace spans to %s\n", len(spans), path)
	return nil
}

// printStages renders the sampled per-stage eval timing collected under
// -stage-sample: where each evaluated circuit actually spends its time.
func printStages(timer *telemetry.EvalTimer) {
	bd := timer.Breakdown()
	if len(bd) == 0 {
		return
	}
	fmt.Printf("  eval stage timing (sampled 1 in %d):\n", timer.SampleEvery())
	for _, b := range bd {
		mean := time.Duration(b.MeanSeconds * 1e9)
		fmt.Printf("    %-10s %12v mean over %d samples\n",
			b.Stage, mean.Round(time.Nanosecond), b.SampledEvals)
	}
}

// printMetrics renders the run's statistics through the same metrics
// registry oblxd serves at /debug/metrics, so scripted users get one
// machine-readable format from both the CLI and the daemon.
func printMetrics(best *oblx.Result) {
	reg := metrics.New()
	reg.Counter("oblx_evals_total").Add(int64(best.EvalCount))
	reg.SetHelp("oblx_evals_total", "circuit evaluations this run")
	reg.Counter("oblx_moves_total").Add(int64(best.Moves))
	reg.Counter("oblx_moves_accepted_total").Add(int64(best.Accepted))
	if secs := best.Duration.Seconds(); secs > 0 {
		reg.Gauge("oblx_evals_per_sec").Set(float64(best.EvalCount) / secs)
	}
	reg.Gauge("oblx_time_per_eval_seconds").Set(best.TimePerEval().Seconds())
	reg.Gauge("oblx_run_seconds").Set(best.Duration.Seconds())
	reg.Gauge("oblx_cost_total").Set(best.Cost.Total)
	f := best.Failures
	for name, v := range map[string]int{
		"panic_recovered": f.PanicsRecovered, "non_finite_cost": f.NonFiniteCosts,
		"retry": f.Retries, "quarantined": f.Quarantined, "rejected_move": f.RejectedMoves,
	} {
		reg.Counter("oblx_failures_total", "kind", name).Add(int64(v))
	}
	fmt.Println()
	reg.WriteText(os.Stdout)
}
