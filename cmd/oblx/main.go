// Command oblx synthesizes a circuit from an ASTRX deck: it compiles the
// problem, anneals (optionally several parallel seeded runs, keeping the
// best — the paper's "5-10 annealing runs performed overnight"), then
// verifies the winner against the reference simulator and prints the
// spec-by-spec "OBLX / Simulation" comparison.
//
// Long runs are interruptible: Ctrl-C (or -timeout) stops the annealing
// and reports the best design found so far, and -checkpoint/-resume make
// a run survive process death without losing progress.
//
// Usage:
//
//	oblx [-moves N] [-runs K] [-seed S] <deck-file>
//	oblx -bench "Simple OTA" -moves 120000 -runs 4
//	oblx -bench "Simple OTA" -checkpoint run.ckpt        # interruptible
//	oblx -bench "Simple OTA" -checkpoint run.ckpt -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"astrx/internal/bench"
	"astrx/internal/faults"
	"astrx/internal/netlist"
	"astrx/internal/oblx"
	"astrx/internal/verify"
)

func main() {
	benchName := flag.String("bench", "", "synthesize a builtin benchmark")
	moves := flag.Int("moves", 120_000, "annealing move budget per run")
	runs := flag.Int("runs", 1, "independent seeded runs (best kept)")
	seed := flag.Int64("seed", 1, "base random seed")
	timeout := flag.Duration("timeout", 0, "abort after this long, keeping the best design so far")
	ckptPath := flag.String("checkpoint", "", "write a resumable state snapshot to this file")
	ckptEvery := flag.Int("checkpoint-every", 5000, "moves between checkpoint writes")
	resume := flag.Bool("resume", false, "resume from the -checkpoint file instead of starting fresh")
	noFreeze := flag.Bool("no-freeze", false, "disable the freezing criterion (consume the full move budget)")
	faultPanic := flag.Float64("fault-panic", 0, "inject evaluator panics at this rate (testing)")
	faultNaN := flag.Float64("fault-nan", 0, "inject NaN costs at this rate (testing)")
	faultNewton := flag.Float64("fault-newton", 0, "inject Newton non-convergence at this rate (testing)")
	flag.Parse()

	var src, title string
	switch {
	case *benchName != "":
		ok := false
		for _, c := range bench.Suite {
			if string(c) == *benchName {
				src, title, ok = bench.DeckSource(c), *benchName, true
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "oblx: unknown benchmark %q\n", *benchName)
			os.Exit(1)
		}
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "oblx:", err)
			os.Exit(1)
		}
		src, title = string(data), flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: oblx [-bench name | deck-file] [-moves N] [-runs K] [-seed S] [-timeout D] [-checkpoint F [-resume]]")
		os.Exit(2)
	}

	deck, err := netlist.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oblx:", err)
		os.Exit(1)
	}

	// SIGINT/SIGTERM cancel the run; the annealer returns best-so-far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opt := oblx.Options{
		Seed:            *seed,
		MaxMoves:        *moves,
		NoFreeze:        *noFreeze,
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
	}
	if *faultPanic > 0 || *faultNaN > 0 || *faultNewton > 0 {
		opt.Faults = faults.New(*seed+997, faults.Rates{
			EvalPanic: *faultPanic, NaNCost: *faultNaN, NewtonFail: *faultNewton,
		})
	}
	if *resume {
		if *ckptPath == "" {
			fmt.Fprintln(os.Stderr, "oblx: -resume requires -checkpoint")
			os.Exit(2)
		}
		if *runs > 1 {
			fmt.Fprintln(os.Stderr, "oblx: -resume is a single-run feature; drop -runs")
			os.Exit(2)
		}
		ck, err := oblx.LoadCheckpoint(*ckptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oblx:", err)
			os.Exit(1)
		}
		opt.Resume = ck
		fmt.Printf("resuming from %s (move %d of %d)\n", *ckptPath, ck.Anneal.Move, ck.MaxMoves)
	}

	var best *oblx.Result
	if *runs <= 1 {
		best, err = oblx.Run(ctx, deck, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oblx:", err)
			os.Exit(1)
		}
	} else {
		var errs []error
		best, _, errs = oblx.RunBest(ctx, deck, *runs, opt)
		for i, e := range errs {
			if e != nil {
				fmt.Fprintf(os.Stderr, "oblx: warning: run %d failed: %v\n", i, e)
			}
		}
		if best == nil {
			fmt.Fprintln(os.Stderr, "oblx: all runs failed")
			os.Exit(1)
		}
	}

	fmt.Printf("OBLX synthesis of %s (seed %d, %d moves", title, best.Seed, best.Moves)
	if best.Froze {
		fmt.Printf(", froze early")
	}
	if best.Cancelled {
		fmt.Printf(", CANCELLED — best-so-far design")
	}
	fmt.Printf(")\n")
	fmt.Printf("  cost: obj %.4g, perf %.4g, dev %.4g, dc %.4g (total %.4g)\n",
		best.Cost.Objective, best.Cost.Perf, best.Cost.Dev, best.Cost.DC, best.Cost.Total)
	if best.EvalCount > 0 {
		fmt.Printf("  time/ckt eval: %v; CPU/run: %v (%d evaluations)\n",
			best.TimePerEval().Round(time.Microsecond), best.Duration.Round(time.Millisecond), best.EvalCount)
	} else {
		fmt.Printf("  time/ckt eval: n/a (no evaluations ran); CPU/run: %v\n",
			best.Duration.Round(time.Millisecond))
	}
	if f := best.Failures; f.Total() > 0 {
		fmt.Printf("  failures absorbed: %d panics recovered, %d non-finite costs, %d retries, %d quarantined, %d moves rejected\n",
			f.PanicsRecovered, f.NonFiniteCosts, f.Retries, f.Quarantined, f.RejectedMoves)
	}
	if best.CheckpointErr != nil {
		fmt.Fprintf(os.Stderr, "oblx: warning: checkpoint writes failed: %v\n", best.CheckpointErr)
	}
	fmt.Println("  design variables:")
	for i := 0; i < best.Compiled.NUser; i++ {
		fmt.Printf("    %-10s = %.5g\n", best.Compiled.Vars()[i].Name, best.X[i])
	}

	rep, err := verify.Design(best.Compiled, best.X, best.State.SpecVals)
	if err != nil {
		// A cancelled run's half-annealed point may not verify; that is a
		// caveat on the partial result, not a failure of the command.
		if best.Cancelled {
			fmt.Fprintln(os.Stderr, "oblx: warning: best-so-far design did not verify:", err)
			return
		}
		fmt.Fprintln(os.Stderr, "oblx: verification:", err)
		os.Exit(1)
	}
	fmt.Println("  specification           OBLX        / Simulation   (relerr)")
	for _, row := range rep.Specs {
		met := "met"
		if !row.Met {
			met = "NOT MET"
			if row.Objective {
				met = "objective"
			}
		}
		fmt.Printf("    %-10s %14.6g / %-14.6g (%.2g)  %s\n",
			row.Name, row.Predicted, row.Simulated, row.RelErr, met)
	}
	fmt.Printf("  reference bias: %d Newton iterations, max |KCL| %.3g A\n",
		rep.BiasIterations, rep.MaxKCL)
}
