// Command oblx synthesizes a circuit from an ASTRX deck: it compiles the
// problem, anneals (optionally several parallel seeded runs, keeping the
// best — the paper's "5-10 annealing runs performed overnight"), then
// verifies the winner against the reference simulator and prints the
// spec-by-spec "OBLX / Simulation" comparison.
//
// Usage:
//
//	oblx [-moves N] [-runs K] [-seed S] <deck-file>
//	oblx -bench "Simple OTA" -moves 120000 -runs 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"astrx/internal/bench"
	"astrx/internal/netlist"
	"astrx/internal/oblx"
	"astrx/internal/verify"
)

func main() {
	benchName := flag.String("bench", "", "synthesize a builtin benchmark")
	moves := flag.Int("moves", 120_000, "annealing move budget per run")
	runs := flag.Int("runs", 1, "independent seeded runs (best kept)")
	seed := flag.Int64("seed", 1, "base random seed")
	flag.Parse()

	var src, title string
	switch {
	case *benchName != "":
		ok := false
		for _, c := range bench.Suite {
			if string(c) == *benchName {
				src, title, ok = bench.DeckSource(c), *benchName, true
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "oblx: unknown benchmark %q\n", *benchName)
			os.Exit(1)
		}
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "oblx:", err)
			os.Exit(1)
		}
		src, title = string(data), flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: oblx [-bench name | deck-file] [-moves N] [-runs K] [-seed S]")
		os.Exit(2)
	}

	deck, err := netlist.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oblx:", err)
		os.Exit(1)
	}
	opt := oblx.Options{Seed: *seed, MaxMoves: *moves}
	var best *oblx.Result
	if *runs <= 1 {
		best, err = oblx.Run(deck, opt)
	} else {
		best, _, err = oblx.RunBest(deck, *runs, opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oblx:", err)
		os.Exit(1)
	}

	fmt.Printf("OBLX synthesis of %s (seed %d, %d moves", title, best.Seed, best.Moves)
	if best.Froze {
		fmt.Printf(", froze early")
	}
	fmt.Printf(")\n")
	fmt.Printf("  cost: obj %.4g, perf %.4g, dev %.4g, dc %.4g (total %.4g)\n",
		best.Cost.Objective, best.Cost.Perf, best.Cost.Dev, best.Cost.DC, best.Cost.Total)
	fmt.Printf("  time/ckt eval: %v; CPU/run: %v (%d evaluations)\n",
		best.TimePerEval().Round(time.Microsecond), best.Duration.Round(time.Millisecond), best.EvalCount)
	fmt.Println("  design variables:")
	for i := 0; i < best.Compiled.NUser; i++ {
		fmt.Printf("    %-10s = %.5g\n", best.Compiled.Vars()[i].Name, best.X[i])
	}

	rep, err := verify.Design(best.Compiled, best.X, best.State.SpecVals)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oblx: verification:", err)
		os.Exit(1)
	}
	fmt.Println("  specification           OBLX        / Simulation   (relerr)")
	for _, row := range rep.Specs {
		met := "met"
		if !row.Met {
			met = "NOT MET"
			if row.Objective {
				met = "objective"
			}
		}
		fmt.Printf("    %-10s %14.6g / %-14.6g (%.2g)  %s\n",
			row.Name, row.Predicted, row.Simulated, row.RelErr, met)
	}
	fmt.Printf("  reference bias: %d Newton iterations, max |KCL| %.3g A\n",
		rep.BiasIterations, rep.MaxKCL)
}
