// Command yield implements the paper's declared future work: after
// synthesizing a design it reports (a) the relative sensitivity of every
// spec to every design variable and (b) a Monte Carlo mismatch/yield
// estimate, both measured with true Newton bias solves per sample.
//
// Usage:
//
//	yield -bench "Simple OTA" -moves 60000 -mc 50
//	yield <deck-file> -mc 100 -vth-sigma 0.02
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"astrx/internal/bench"
	"astrx/internal/netlist"
	"astrx/internal/oblx"
	"astrx/internal/yield"
)

func main() {
	benchName := flag.String("bench", "", "use a builtin benchmark")
	moves := flag.Int("moves", 60_000, "annealing move budget")
	seed := flag.Int64("seed", 1, "random seed")
	mc := flag.Int("mc", 50, "Monte Carlo samples")
	vthSigma := flag.Float64("vth-sigma", 0.015, "1σ threshold mismatch (V)")
	betaSigma := flag.Float64("beta-sigma", 0.02, "1σ relative beta mismatch")
	flag.Parse()

	var src, title string
	switch {
	case *benchName != "":
		ok := false
		for _, c := range bench.Suite {
			if string(c) == *benchName {
				src, title, ok = bench.DeckSource(c), *benchName, true
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "yield: unknown benchmark %q\n", *benchName)
			os.Exit(1)
		}
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "yield:", err)
			os.Exit(1)
		}
		src, title = string(data), flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: yield [-bench name | deck-file] [-mc N]")
		os.Exit(2)
	}

	deck, err := netlist.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yield:", err)
		os.Exit(1)
	}

	// Ctrl-C stops whichever stage is running: synthesis returns its
	// best-so-far design, Monte Carlo aggregates the samples it finished.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("synthesizing %s (%d moves)…\n", title, *moves)
	run, err := oblx.Run(ctx, deck, oblx.Options{Seed: *seed, MaxMoves: *moves})
	if err != nil {
		fmt.Fprintln(os.Stderr, "yield:", err)
		os.Exit(1)
	}
	if run.Cancelled {
		fmt.Println("synthesis interrupted — analyzing the best design found so far")
	}

	fmt.Println("\nsensitivities (% spec change per % variable change), top 12:")
	ss, err := yield.Sensitivities(ctx, run.Compiled, run.X)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yield:", err)
		os.Exit(1)
	}
	for _, s := range yield.TopSensitivities(ss, 12) {
		fmt.Printf("  d(%s)/d(%s) = %+8.3f\n", s.Spec, s.Var, s.Rel)
	}

	fmt.Printf("\nMonte Carlo mismatch analysis (%d samples, σVth=%.0f mV, σβ=%.1f%%):\n",
		*mc, *vthSigma*1e3, *betaSigma*100)
	res, err := yield.MonteCarlo(ctx, src, run.X, *mc,
		yield.MismatchModel{VthSigma: *vthSigma, BetaSigma: *betaSigma}, *seed+101)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yield:", err)
		os.Exit(1)
	}
	fmt.Printf("  yield (all constraints met): %.0f%% (%d failed evaluations)\n",
		res.Yield*100, res.Failed)
	fmt.Printf("  %-8s %12s %12s %12s %12s %6s\n", "spec", "mean", "std", "min", "max", "fails")
	for _, st := range res.Specs {
		fmt.Printf("  %-8s %12.5g %12.3g %12.5g %12.5g %6d\n",
			st.Spec, st.Mean, st.Std, st.Min, st.Max, st.FailCount)
	}
}
