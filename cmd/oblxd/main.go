// Command oblxd is the synthesis daemon: it serves the ASTRX/OBLX
// toolchain over HTTP, running submitted decks on a bounded worker pool
// with streaming progress, cancellation, and checkpoint/restart.
//
//	oblxd -addr :8080 -state-dir /var/lib/oblxd
//
// Submit a deck and watch it anneal:
//
//	curl -s -X POST --data-binary @ota.ckt 'localhost:8080/v1/jobs?max_moves=120000'
//	curl -N localhost:8080/v1/jobs/<id>/events
//	curl -s localhost:8080/v1/jobs/<id>/result
//
// On SIGTERM/SIGINT the daemon drains gracefully: new submissions get
// 503, running jobs checkpoint at their exact annealing move, and a
// restarted daemon pointed at the same -state-dir resumes them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"astrx/internal/metrics"
	"astrx/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		stateDir   = flag.String("state-dir", "", "directory for job records and checkpoints (empty: in-memory only, jobs die with the daemon)")
		workers    = flag.Int("workers", 0, "concurrent synthesis jobs (0: GOMAXPROCS)")
		ckptEvery  = flag.Int("checkpoint-every", 5000, "moves between job checkpoints")
		progEvery  = flag.Int("progress-every", 500, "default moves between progress events")
		movesLimit = flag.Int("max-moves-limit", 0, "reject jobs asking for more moves than this (0: no limit)")
		drainGrace = flag.Duration("drain-grace", 60*time.Second, "how long shutdown waits for jobs to checkpoint")
		pprofOn    = flag.Bool("pprof", false, "serve runtime profiles under /debug/pprof/ (see docs/profiling.md)")
	)
	flag.Parse()

	if err := run(*addr, *stateDir, *workers, *ckptEvery, *progEvery, *movesLimit, *drainGrace, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "oblxd:", err)
		os.Exit(1)
	}
}

func run(addr, stateDir string, workers, ckptEvery, progEvery, movesLimit int, drainGrace time.Duration, pprofOn bool) error {
	if workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d)", workers)
	}
	if ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0 (got %d)", ckptEvery)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	mgr, err := server.New(server.Options{
		StateDir:        stateDir,
		Workers:         workers,
		CheckpointEvery: ckptEvery,
		ProgressEvery:   progEvery,
		MaxMovesLimit:   movesLimit,
		EnableProfiling: pprofOn,
		Registry:        metrics.New(),
		Logf:            logger.Printf,
	})
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:    addr,
		Handler: mgr.Handler(),
		// Job streams are long-lived; only bound the read side.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("oblxd: listening on %s (state-dir=%q)", addr, stateDir)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	logger.Printf("oblxd: shutting down — draining jobs (grace %s)", drainGrace)
	grace, cancel := context.WithTimeout(context.Background(), drainGrace)
	defer cancel()
	// Drain the job manager first so in-flight anneals checkpoint; the
	// HTTP server follows once event streams have terminated.
	if err := mgr.Shutdown(grace); err != nil {
		logger.Printf("oblxd: %v", err)
	}
	if err := srv.Shutdown(grace); err != nil {
		srv.Close()
	}
	logger.Printf("oblxd: bye")
	return nil
}
