// Command oblxd is the synthesis daemon: it serves the ASTRX/OBLX
// toolchain over HTTP, running submitted decks on a bounded worker pool
// with streaming progress, cancellation, and checkpoint/restart.
//
//	oblxd -addr :8080 -state-dir /var/lib/oblxd
//
// Submit a deck and watch it anneal:
//
//	curl -s -X POST --data-binary @ota.ckt 'localhost:8080/v1/jobs?max_moves=120000'
//	curl -N localhost:8080/v1/jobs/<id>/events
//	curl -s localhost:8080/v1/jobs/<id>/result
//
// On SIGTERM/SIGINT the daemon drains gracefully: new submissions get
// 503, running jobs checkpoint at their exact annealing move, and a
// restarted daemon pointed at the same -state-dir resumes them.
//
// The daemon also scales out as a fleet (see docs/operations.md,
// "Running a fleet"): one coordinator owns the job store and hands out
// leases, any number of workers claim and execute runs:
//
//	oblxd -mode coordinator -addr :8080 -state-dir /var/lib/oblxd
//	oblxd -mode worker -coordinator http://coord:8080 -state-dir /var/lib/oblxd-w1
//
// The default -mode standalone behaves exactly as before.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"astrx/internal/fleet"
	"astrx/internal/metrics"
	"astrx/internal/rescache"
	"astrx/internal/server"
	"astrx/internal/telemetry"
	"astrx/internal/tenancy"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		stateDir   = flag.String("state-dir", "", "directory for job records and checkpoints (empty: in-memory only, jobs die with the daemon)")
		workers    = flag.Int("workers", 0, "concurrent synthesis jobs (0: GOMAXPROCS)")
		ckptEvery  = flag.Int("checkpoint-every", 5000, "moves between job checkpoints")
		progEvery  = flag.Int("progress-every", 500, "default moves between progress events")
		movesLimit = flag.Int("max-moves-limit", 0, "reject jobs asking for more moves than this (0: no limit)")
		drainGrace = flag.Duration("drain-grace", 60*time.Second, "how long shutdown waits for jobs to checkpoint")
		pprofOn    = flag.Bool("pprof", false, "serve runtime profiles under /debug/pprof/ (see docs/profiling.md)")

		maxQueue    = flag.Int("max-queue", 0, "bound on jobs waiting for a worker; submissions beyond it get 429 (0: unbounded)")
		stallTO     = flag.Duration("stall-timeout", 0, "kill and requeue a running job with no progress tick for this long (0: supervision off)")
		maxAttempts = flag.Int("max-attempts", 0, "supervised attempts before a stalling job is poisoned (0: default 3)")
		jobDeadline = flag.Duration("job-deadline", 0, "per-job wall-clock limit; exceeding it fails the job (0: no limit)")

		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		telemSample = flag.Int("telemetry-sample", 64, "sample 1 in N evaluations for per-stage timing (0: off)")
		flightRecs  = flag.Int("flight-records", 0, "per-job flight-recorder ring size (0: default 2048)")
		traceRecs   = flag.Int("trace-records", 0, "per-job sampled-eval trace-span ring size (0: default 256)")

		apiKeysFile = flag.String("api-keys-file", "", "JSON tenant/API-key file; requests must then authenticate (empty: open mode). SIGHUP reloads it")
		cacheMode   = flag.String("cache-mode", "off", "result cache: off, ro (serve hits, never store), or rw")
		cacheMax    = flag.Int("cache-entries", 0, "result-cache LRU bound (0: default 4096)")

		mode        = flag.String("mode", "standalone", "standalone, coordinator, or worker (see docs/operations.md)")
		coordinator = flag.String("coordinator", "", "coordinator base URL (worker mode)")
		workerID    = flag.String("worker-id", "", "worker name in leases and logs (worker mode; default host-pid)")
		leaseTTL    = flag.Duration("lease-ttl", 15*time.Second, "coordinator: declare a worker dead after this long without a heartbeat")
		hbEvery     = flag.Duration("heartbeat-every", 0, "coordinator: heartbeat cadence workers are told to use (0: lease-ttl/3)")
	)
	flag.Parse()

	cfg := daemonConfig{
		addr: *addr, stateDir: *stateDir, workers: *workers,
		ckptEvery: *ckptEvery, progEvery: *progEvery, movesLimit: *movesLimit,
		drainGrace: *drainGrace, pprofOn: *pprofOn,
		maxQueue: *maxQueue, stallTimeout: *stallTO,
		maxAttempts: *maxAttempts, jobDeadline: *jobDeadline,
		logFormat: *logFormat, logLevel: *logLevel,
		telemSample: *telemSample, flightRecs: *flightRecs, traceRecs: *traceRecs,
		apiKeysFile: *apiKeysFile, cacheMode: *cacheMode, cacheMax: *cacheMax,
		mode: *mode, coordinator: *coordinator, workerID: *workerID,
		leaseTTL: *leaseTTL, hbEvery: *hbEvery,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "oblxd:", err)
		os.Exit(1)
	}
}

// daemonConfig carries the parsed flags into run.
type daemonConfig struct {
	addr, stateDir       string
	workers              int
	ckptEvery, progEvery int
	movesLimit           int
	drainGrace           time.Duration
	pprofOn              bool

	maxQueue, maxAttempts int
	stallTimeout          time.Duration
	jobDeadline           time.Duration

	logFormat, logLevel string
	telemSample         int
	flightRecs          int
	traceRecs           int

	apiKeysFile string
	cacheMode   string
	cacheMax    int

	mode, coordinator, workerID string
	leaseTTL, hbEvery           time.Duration
}

func run(cfg daemonConfig) error {
	if cfg.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d)", cfg.workers)
	}
	if cfg.ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0 (got %d)", cfg.ckptEvery)
	}
	if cfg.maxQueue < 0 || cfg.maxAttempts < 0 {
		return fmt.Errorf("-max-queue and -max-attempts must be >= 0")
	}
	if cfg.stallTimeout < 0 || cfg.jobDeadline < 0 {
		return fmt.Errorf("-stall-timeout and -job-deadline must be >= 0")
	}
	if cfg.telemSample < 0 || cfg.flightRecs < 0 || cfg.traceRecs < 0 {
		return fmt.Errorf("-telemetry-sample, -flight-records, and -trace-records must be >= 0")
	}

	logger, err := telemetry.NewLogger(os.Stderr, cfg.logFormat, cfg.logLevel)
	if err != nil {
		return err
	}
	switch cfg.mode {
	case "standalone", "coordinator":
		return runServe(cfg, logger)
	case "worker":
		return runWorker(cfg, logger)
	default:
		return fmt.Errorf("-mode must be standalone, coordinator, or worker (got %q)", cfg.mode)
	}
}

// runServe runs the HTTP daemon: the whole service in standalone mode,
// or the job store + lease coordinator in coordinator mode (execution
// then happens on workers).
func runServe(cfg daemonConfig, logger *slog.Logger) error {
	// The Options convention is 0 → default, negative → off; the flag
	// convention is 0 → off (nothing is "default off by surprise").
	sample := cfg.telemSample
	if sample == 0 {
		sample = -1
	}

	// Tenancy: a key file turns authentication on; without one the
	// daemon runs open, exactly as before. SIGHUP reloads the file in
	// place (a broken edit keeps the previous table).
	var auth *tenancy.Authenticator
	if cfg.apiKeysFile != "" {
		a, err := tenancy.NewAuthenticator(cfg.apiKeysFile)
		if err != nil {
			return err
		}
		auth = a
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := a.Reload(); err != nil {
					logger.Error("api key file reload failed, previous table kept", "err", err)
				} else {
					logger.Info("api key file reloaded", "path", cfg.apiKeysFile)
				}
			}
		}()
	}

	// Result cache: durable alongside the job records, so hits survive
	// restarts with the same corruption-quarantine discipline. Its
	// metrics land on the manager's registry (one /debug/metrics page).
	reg := metrics.New()
	cmode, err := rescache.ParseMode(cfg.cacheMode)
	if err != nil {
		return err
	}
	var cache *rescache.Cache
	if cmode != rescache.Off {
		if cfg.stateDir == "" {
			return errors.New("-cache-mode requires -state-dir (the cache is durable)")
		}
		cache, err = rescache.New(rescache.Options{
			Mode:       cmode,
			Dir:        filepath.Join(cfg.stateDir, "rescache"),
			MaxEntries: cfg.cacheMax,
			Registry:   reg,
			Logger:     logger,
		})
		if err != nil {
			return err
		}
	}

	mgr, err := server.New(server.Options{
		StateDir:             cfg.stateDir,
		Workers:              cfg.workers,
		CheckpointEvery:      cfg.ckptEvery,
		ProgressEvery:        cfg.progEvery,
		MaxMovesLimit:        cfg.movesLimit,
		EnableProfiling:      cfg.pprofOn,
		Registry:             reg,
		Logger:               logger,
		Auth:                 auth,
		Cache:                cache,
		TelemetrySampleEvery: sample,
		FlightRecords:        cfg.flightRecs,
		MaxQueue:             cfg.maxQueue,
		StallTimeout:         cfg.stallTimeout,
		MaxAttempts:          cfg.maxAttempts,
		JobDeadline:          cfg.jobDeadline,
		ExternalExec:         cfg.mode == "coordinator",
	})
	if err != nil {
		return err
	}

	handler := mgr.Handler()
	if cfg.mode == "coordinator" {
		coord := fleet.NewCoordinator(mgr, fleet.Options{
			LeaseTTL:       cfg.leaseTTL,
			HeartbeatEvery: cfg.hbEvery,
			// In coordinator mode -stall-timeout supervises eval progress
			// across the fleet instead of a local worker pool.
			StallTimeout:    cfg.stallTimeout,
			CheckpointEvery: cfg.ckptEvery,
			StateDir:        cfg.stateDir,
			Logger:          logger,
		})
		defer coord.Stop()
		handler = coord.Handler()
	}

	srv := &http.Server{
		Addr:    cfg.addr,
		Handler: handler,
		// Job streams are long-lived; only bound the read side.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", cfg.addr, "state_dir", cfg.stateDir)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining jobs", "grace", cfg.drainGrace)
	grace, cancel := context.WithTimeout(context.Background(), cfg.drainGrace)
	defer cancel()
	// Drain the job manager first so in-flight anneals checkpoint; the
	// HTTP server follows once event streams have terminated.
	if err := mgr.Shutdown(grace); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	if err := srv.Shutdown(grace); err != nil {
		srv.Close()
	}
	logger.Info("bye")
	return nil
}

// runWorker runs the fleet-worker claim loop against a coordinator. On
// SIGTERM/SIGINT the worker drains gracefully: the in-flight run ships
// a final checkpoint and releases its lease so another worker resumes
// it mid-anneal.
func runWorker(cfg daemonConfig, logger *slog.Logger) error {
	if cfg.coordinator == "" {
		return errors.New("-mode worker requires -coordinator URL")
	}
	id := cfg.workerID
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := fleet.NewWorker(fleet.WorkerOptions{
		Coordinator: cfg.coordinator,
		ID:          id,
		Dir:         cfg.stateDir,
		Logger:      logger,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("worker started", "id", id, "coordinator", cfg.coordinator, "state_dir", cfg.stateDir)
	err := w.Run(ctx)
	logger.Info("bye")
	return err
}
