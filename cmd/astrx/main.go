// Command astrx compiles an ASTRX problem description and prints the
// analysis statistics (the per-circuit content of the paper's Table 1)
// without running any synthesis.
//
// Usage:
//
//	astrx <deck-file>
//	astrx -bench "Simple OTA"     # compile a builtin benchmark
//	astrx -list                   # list builtin benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"astrx/internal/astrx"
	"astrx/internal/bench"
	"astrx/internal/netlist"
)

// parseCornersFlag maps the -corners flag value onto the SelectCorners
// convention: "" and "all" select every declared corner (nil), "none"
// forces nominal-only (empty non-nil), anything else is a name list.
func parseCornersFlag(v string) []string {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "", "all":
		return nil
	case "none":
		return []string{}
	}
	var out []string
	for _, n := range strings.Split(v, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func main() {
	benchName := flag.String("bench", "", "compile a builtin benchmark instead of a file")
	list := flag.Bool("list", false, "list builtin benchmarks")
	hashOnly := flag.Bool("hash", false, "print the deck's canonical content hash (the oblxd result-cache key input) and exit")
	cornersFlag := flag.String("corners", "", `corners to compile plans for: comma-separated .corner names, "all" (default), or "none"`)
	flag.Parse()

	if *list {
		for _, c := range bench.Suite {
			fmt.Println(c)
		}
		return
	}

	var src, title string
	switch {
	case *benchName != "":
		found := false
		for _, c := range bench.Suite {
			if string(c) == *benchName {
				src = bench.DeckSource(c)
				title = *benchName
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "astrx: unknown benchmark %q (try -list)\n", *benchName)
			os.Exit(1)
		}
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "astrx:", err)
			os.Exit(1)
		}
		src = string(data)
		title = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: astrx [-bench name | deck-file]")
		os.Exit(2)
	}

	if *hashOnly {
		h, err := netlist.CanonicalHash(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "astrx:", err)
			os.Exit(1)
		}
		fmt.Println(h)
		return
	}

	deck, err := netlist.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "astrx:", err)
		os.Exit(1)
	}
	// Pre-flight before compiling: every detectable mistake is reported
	// at once (dangling transfer functions, bad variable ranges, ...),
	// not just the first one Compile happens to trip over.
	if err := deck.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "astrx: deck failed validation:")
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	comp, err := astrx.Compile(deck, astrx.CostOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "astrx:", err)
		os.Exit(1)
	}
	s := comp.Stats()
	fmt.Printf("ASTRX analysis of %s\n", title)
	fmt.Printf("  input lines:   netlist/models %d, synthesis-specific %d\n", s.NetlistLines, s.SynthLines)
	fmt.Printf("  variables:     user-supplied %d, node voltages added %d\n", s.UserVars, s.NodeVoltVars)
	fmt.Printf("  cost function: %d terms (~%d lines of generated C in the original tool)\n", s.CostTerms, s.EstCLines)
	fmt.Printf("  bias circuit:  %d nodes, %d elements\n", s.BiasNodes, s.BiasElements)
	for i, j := range s.JigCircuits {
		fmt.Printf("  AWE circuit %d: %d nodes, %d elements\n", i+1, j.Nodes, j.Elements)
	}
	for _, v := range comp.Vars()[:comp.NUser] {
		kind := "log-grid"
		if v.Continuous {
			kind = "continuous"
		}
		fmt.Printf("  var %-10s [%.3g, %.3g] %s\n", v.Name, v.Min, v.Max, kind)
	}

	names, err := astrx.SelectCorners(deck, parseCornersFlag(*cornersFlag))
	if err != nil {
		fmt.Fprintln(os.Stderr, "astrx:", err)
		os.Exit(1)
	}
	if len(names) > 0 {
		set, err := astrx.CompileCorners(deck, names, astrx.CostOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "astrx:", err)
			os.Exit(1)
		}
		fmt.Printf("  corners:       %d lanes (nominal + %s), %d worst-case annealing variables\n",
			set.K(), strings.Join(names, ", "), set.NVars())
	}
}
